#![allow(clippy::needless_range_loop)] // parallel per-session arrays

//! **V3 — continuous-time validation**: the paper's Lemma 5 in its
//! *continuous-time* form (with the discretization parameter ξ) against
//! an exact event-driven fluid simulation — the slotted experiments
//! never exercise the ξ machinery.
//!
//! Scenario: three continuous-time on-off Markov fluid sources share a
//! unit-rate RPPS GPS server. Each source is characterized as an E.B.B.
//! process via the continuous-time effective bandwidth; the Theorem-10
//! backlog bound is evaluated both at the paper's `ξ = 1` and at the
//! Remark-1 optimal `ξ*`, plus the direct CT martingale queue bound.
//! Backlogs are sampled at regular instants from the exact simulator.
//!
//! The horizon is split into independent replications run in parallel on
//! the `gps_par` pool (worker count from `GPS_PAR_THREADS`), each with a
//! derived seed, and merged in replication order — identical output at
//! any worker count.

use gps_ebb::{DeltaTailBound, TimeModel};
use gps_experiments::csv::CsvWriter;
use gps_experiments::plot::{ascii_log_plot, Curve};
use gps_experiments::{finish_obs, init_obs, measure_slots_or};
use gps_obs::{BoundCurve, BoundMonitor, RunManifest, SeriesKind, SessionCurves};
use gps_sim::RateFluidGps;
use gps_sources::CtmcFluidSource;
use gps_stats::rng::SeedSequence;
use gps_stats::BinnedCcdf;

/// One continuous-time replication: exact fluid simulation over
/// `horizon` time units with a derived seed, sampled every `sample_dt`
/// after `warmup`. Returns the per-session backlog CCDFs and the sample
/// count.
fn simulate_ct(
    sources: &[CtmcFluidSource],
    rhos: &[f64],
    seed: u64,
    horizon: f64,
    sample_dt: f64,
    warmup: f64,
) -> (Vec<BinnedCcdf>, u64) {
    let n = sources.len();
    let seeds = SeedSequence::new(seed);
    let mut sim = RateFluidGps::new(rhos.to_vec(), 1.0);
    let mut rngs: Vec<_> = (0..n).map(|i| seeds.rng("ct", i as u64)).collect();
    let mut srcs = sources.to_vec();
    // Per-source event streams: (next change time, current rate).
    let mut next_change = vec![0.0f64; n];
    for i in 0..n {
        srcs[i].reset_stationary(&mut rngs[i]);
        // First segment starts at t = 0.
        let (dur, rate) = srcs[i].next_segment(&mut rngs[i]);
        sim.set_input_rate(0.0, i, rate);
        next_change[i] = dur;
    }
    let mut ccdfs: Vec<BinnedCcdf> = (0..n)
        .map(|_| BinnedCcdf::new((0..60).map(|k| k as f64 * 0.25).collect()))
        .collect();
    let mut t_sample = warmup;
    let mut samples = 0u64;
    // Merged chronological loop: rate-change events and sampling instants
    // are applied in global time order.
    loop {
        let (i_min, &t_event) = next_change
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty");
        // Take all samples due before the next rate change.
        while t_sample <= t_event.min(horizon) {
            sim.advance_to(t_sample);
            for i in 0..n {
                ccdfs[i].push(sim.backlog(i));
            }
            samples += 1;
            t_sample += sample_dt;
        }
        if t_event >= horizon || t_sample >= horizon {
            break;
        }
        let (dur, rate) = srcs[i_min].next_segment(&mut rngs[i_min]);
        sim.set_input_rate(t_event, i_min, rate);
        next_change[i_min] = t_event + dur;
    }
    (ccdfs, samples)
}

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let obs = init_obs("validate_continuous", quiet);
    // Three heterogeneous CT on-off sources (mean rates 0.15/0.2/0.15).
    let specs = [(1.0, 2.0, 0.45), (0.5, 1.5, 0.8), (2.0, 3.0, 0.375)];
    let sources: Vec<CtmcFluidSource> = specs
        .iter()
        .map(|&(a, b, lam)| CtmcFluidSource::on_off(a, b, lam))
        .collect();
    let rhos: Vec<f64> = sources.iter().map(|s| s.mean() * 1.35).collect();
    let total_rho: f64 = rhos.iter().sum();
    println!("V3: continuous-time validation; Σρ = {total_rho:.3}");

    // RPPS weights = ρ; guaranteed rates g_i = ρ_i/Σρ.
    let gs: Vec<f64> = rhos.iter().map(|r| r / total_rho).collect();
    let ebbs: Vec<_> = sources
        .iter()
        .zip(&rhos)
        .map(|(s, &rho)| s.ebb_for_rate(rho).expect("rho in range"))
        .collect();

    // Simulate. GPS_MEASURE_SLOTS doubles as the horizon override here
    // (one sample per unit time, so the scales match). The budget is
    // split across parallel replications with derived seeds.
    let replications = 4u64;
    let horizon = (measure_slots_or(2_000_000) / replications).max(1) as f64;
    let sample_dt = 1.0;
    gps_obs::info(
        "validate_continuous",
        "simulate",
        &[
            ("replications", replications.into()),
            ("horizon_each", horizon.into()),
            ("sample_dt", sample_dt.into()),
        ],
    );
    let reps: Vec<u64> = (0..replications).collect();
    let results = gps_par::par_map(&reps, |&r| {
        simulate_ct(&sources, &rhos, 0xC047 + r, horizon, sample_dt, 1000.0)
    });
    // Online monitor against the direct CT martingale bound — the
    // tightest curve this study evaluates, so it is the alarm threshold.
    let monitor = BoundMonitor::new(
        (0..3)
            .map(|i| {
                let direct = sources[i].queue_tail_bound(gs[i]).expect("stable");
                SessionCurves {
                    backlog: Some(BoundCurve::new(direct.prefactor, direct.decay)),
                    delay: None,
                    delay_shift: 0.0,
                }
            })
            .collect(),
    );
    let check_fold = |ccdfs: &[BinnedCcdf], samples: u64, fold: u64| {
        for (i, c) in ccdfs.iter().enumerate() {
            monitor.check_series(
                gps_obs::metrics(),
                i,
                SeriesKind::Backlog,
                &c.series(),
                samples,
                fold,
            );
        }
    };
    // Merge in replication order, checking the pooled tails per fold.
    let (mut ccdfs, mut samples) = results[0].clone();
    check_fold(&ccdfs, samples, 0);
    for (fold, (rep_ccdfs, rep_samples)) in results[1..].iter().enumerate() {
        for (acc, c) in ccdfs.iter_mut().zip(rep_ccdfs) {
            acc.merge(c);
        }
        samples += rep_samples;
        check_fold(&ccdfs, samples, fold as u64 + 1);
    }

    let mut csv = CsvWriter::create(
        "validate_continuous",
        &["session", "q", "empirical", "xi1", "xi_opt", "ct_direct"],
    )
    .expect("csv");
    // Per-session ξ optimizations fanned out over the gps_par pool.
    let deltas: Vec<DeltaTailBound> = (0..3)
        .map(|i| DeltaTailBound::new(ebbs[i], gs[i]))
        .collect();
    let opt_bounds = DeltaTailBound::continuous_optimal_batch(&deltas);
    for i in 0..3 {
        let d = deltas[i];
        let b_xi1 = d.bound(TimeModel::Continuous { xi: 1.0 });
        let b_opt = opt_bounds[i];
        let direct = sources[i].queue_tail_bound(gs[i]).expect("stable");
        println!(
            "\nsession {}: g = {:.3}, EBB = {}, ξ* = {:.2}",
            i + 1,
            gs[i],
            ebbs[i],
            d.optimal_xi()
        );
        let mut violations = 0usize;
        let mut curves = vec![
            Curve {
                label: format!("e{}", i + 1),
                points: vec![],
            },
            Curve {
                label: "L (Lemma5 ξ*)".into(),
                points: vec![],
            },
            Curve {
                label: "D (CT direct)".into(),
                points: vec![],
            },
        ];
        for (q, p) in ccdfs[i].series() {
            let se = (p * (1.0 - p) / samples as f64).sqrt();
            for b in [b_xi1.tail(q), b_opt.tail(q), direct.tail(q)] {
                if p > b + 3.0 * se {
                    violations += 1;
                }
            }
            curves[0].points.push((q, p));
            curves[1].points.push((q, b_opt.tail(q)));
            curves[2].points.push((q, direct.tail(q)));
            csv.row(&[
                (i + 1) as f64,
                q,
                p,
                b_xi1.tail(q),
                b_opt.tail(q),
                direct.tail(q),
            ])
            .expect("row");
        }
        println!("  violations (ξ=1 / ξ* / direct combined): {violations} (expect 0)");
        println!(
            "  prefactors: ξ=1 -> {:.2}, ξ* -> {:.2}, direct -> {:.2}",
            b_xi1.prefactor, b_opt.prefactor, direct.prefactor
        );
        if i == 0 {
            println!(
                "{}",
                ascii_log_plot(
                    "session 1 backlog: e=empirical, L=Lemma5(ξ*), D=CT-direct",
                    &curves,
                    90,
                    20,
                    1e-7
                )
            );
        }
    }
    let rows = csv.rows();
    let path = csv.finish().expect("finish");
    println!("written: {}", path.display());

    let mut manifest = RunManifest::new("validate_continuous")
        .seed(0xC047)
        .param("replications", replications)
        .param("horizon_each", horizon)
        .param("sample_dt", sample_dt)
        .param("warmup", 1000.0);
    manifest.output("validate_continuous.csv", rows);
    finish_obs(obs, manifest).expect("obs teardown");
}
