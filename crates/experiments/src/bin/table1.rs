//! Reproduces **Table 1**: parameters of the four on-off arrival
//! processes (p_i, q_i, λ_i, λ̄_i), and verifies the mean rates both
//! analytically and by simulation.

use gps_experiments::csv::CsvWriter;
use gps_experiments::paper::table1_sources;
use gps_experiments::{finish_obs, init_obs};
use gps_obs::RunManifest;
use gps_sources::SlotSource;
use gps_stats::rng::SeedSequence;

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let obs = init_obs("table1", quiet);
    let sources = table1_sources();
    let seeds = SeedSequence::new(0x7AB1);
    println!("Table 1: Parameters for the Arrival Processes");
    println!(
        "{:<8} {:>6} {:>6} {:>8} {:>10} {:>12}",
        "session", "p", "q", "lambda", "mean", "sim-mean"
    );
    let mut csv = CsvWriter::create(
        "table1",
        &["session", "p", "q", "lambda", "mean", "sim_mean"],
    )
    .expect("csv");
    for (i, src) in sources.iter().enumerate() {
        let mut s = src.clone();
        let mut rng = seeds.rng("verify", i as u64);
        s.reset(&mut rng);
        let n = 2_000_000u64;
        let total: f64 = (0..n).map(|_| s.next_slot(&mut rng)).sum();
        let sim_mean = total / n as f64;
        println!(
            "{:<8} {:>6.2} {:>6.2} {:>8.2} {:>10.4} {:>12.5}",
            i + 1,
            src.p(),
            src.q(),
            src.lambda(),
            src.mean(),
            sim_mean
        );
        csv.row(&[
            (i + 1) as f64,
            src.p(),
            src.q(),
            src.lambda(),
            src.mean(),
            sim_mean,
        ])
        .expect("row");
    }
    let rows = csv.rows();
    let path = csv.finish().expect("finish");
    println!("\nwritten: {}", path.display());

    let mut manifest = RunManifest::new("table1")
        .seed(0x7AB1)
        .param("verify_slots", 2_000_000u64);
    manifest.output("table1.csv", rows);
    finish_obs(obs, manifest).expect("obs teardown");
}
