//! Reproduces **Table 2**: the two sets of E.B.B. characterizations
//! `(ρ_i, Λ_i, α_i)` for the Table-1 sources, derived with the LNT94
//! machinery (effective-bandwidth root for α, Perron-eigenvector
//! stationary average for Λ). The paper's printed values are shown next
//! to ours; agreement is to the printed precision. The self-contained
//! Chernoff prefactor is also reported to quantify the LNT94 gain.

use gps_experiments::csv::CsvWriter;
use gps_experiments::paper::{table1_sources, ParamSet};
use gps_experiments::{finish_obs, init_obs};
use gps_obs::RunManifest;
use gps_sources::{Lnt94Characterization, PrefactorKind};

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let obs = init_obs("table2", quiet);
    let sources = table1_sources();
    let mut csv = CsvWriter::create(
        "table2",
        &[
            "set",
            "session",
            "rho",
            "lambda",
            "alpha",
            "paper_lambda",
            "paper_alpha",
            "chernoff_lambda",
        ],
    )
    .expect("csv");

    for (set_idx, set) in [ParamSet::Set1, ParamSet::Set2].into_iter().enumerate() {
        println!("Table 2 — {}", set.label());
        println!(
            "{:<8} {:>6} {:>9} {:>8} | {:>9} {:>8} | {:>11}",
            "session", "rho", "Lambda", "alpha", "paper-L", "paper-a", "chernoff-L"
        );
        let rhos = set.rhos();
        let printed = set.printed_table2();
        for i in 0..4 {
            let lnt = Lnt94Characterization::characterize(
                sources[i].as_markov(),
                rhos[i],
                PrefactorKind::Lnt94,
            )
            .expect("valid rho");
            let che = Lnt94Characterization::characterize(
                sources[i].as_markov(),
                rhos[i],
                PrefactorKind::Chernoff,
            )
            .expect("valid rho");
            println!(
                "{:<8} {:>6.2} {:>9.4} {:>8.3} | {:>9.3} {:>8.3} | {:>11.4}",
                i + 1,
                rhos[i],
                lnt.ebb.lambda,
                lnt.ebb.alpha,
                printed[i].0,
                printed[i].1,
                che.ebb.lambda,
            );
            csv.row(&[
                (set_idx + 1) as f64,
                (i + 1) as f64,
                rhos[i],
                lnt.ebb.lambda,
                lnt.ebb.alpha,
                printed[i].0,
                printed[i].1,
                che.ebb.lambda,
            ])
            .expect("row");
        }
        println!();
    }
    let rows = csv.rows();
    let path = csv.finish().expect("finish");
    println!("written: {}", path.display());

    let mut manifest = RunManifest::new("table2").param("sets", "Set1,Set2");
    manifest.output("table2.csv", rows);
    finish_obs(obs, manifest).expect("obs teardown");
}
