//! **A4 — admission control / utilization gain**: the paper's motivating
//! claim is that deterministic worst-case bounds "are usually very
//! conservative", so statistical admission control admits more sessions.
//!
//! Scenario: homogeneous scaled-down on-off sessions (a voice-like
//! model) on a unit-rate RPPS GPS server, QoS target `Pr{D > d} <= ε`.
//! Compared:
//!
//! * deterministic PG admission — needs a leaky-bucket (σ, ρ); since an
//!   on-off Markov source is *not* LBAP, we police a long sample trace
//!   and use the smallest σ that passes (reported for several trace
//!   lengths: it keeps growing, which is itself the paper's point);
//! * statistical admission via the Theorem-10 E.B.B. bound;
//! * statistical admission via the improved LNT94-direct bound;
//! * the stability ceiling `Σρ < r` (upper limit of any scheme).

use gps_analysis::admission::{max_rpps_sessions, QosTarget};
use gps_ebb::TimeModel;
use gps_experiments::csv::CsvWriter;
use gps_experiments::{finish_obs, init_obs};
use gps_netcalc::pg::rpps_admission;
use gps_netcalc::AffineCurve;
use gps_obs::RunManifest;
use gps_sources::lnt94::queue_tail_bound;
use gps_sources::token_bucket::LeakyBucket;
use gps_sources::{ArrivalTrace, Lnt94Characterization, OnOffSource, PrefactorKind, SlotSource};
use gps_stats::rng::SeedSequence;

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let obs = init_obs("admission", quiet);
    // Voice-like source: 10% duty cycle bursts at peak 0.1, mean 0.01.
    let src = OnOffSource::new(0.1, 0.9, 0.1);
    let rho = 0.02; // envelope rate: twice the mean
    let ebb = Lnt94Characterization::characterize(src.as_markov(), rho, PrefactorKind::Lnt94)
        .expect("valid rho")
        .ebb;
    let target = QosTarget::new(20.0, 1e-6);

    println!(
        "A4: admission control, target Pr{{D > {}}} <= {:e}",
        target.delay, target.epsilon
    );
    println!("source: on-off p=0.1 q=0.9 peak=0.1 (mean 0.01), rho = {rho}");

    // Deterministic: police traces of growing length for the minimal σ.
    // The three trace simulations run in parallel on the gps_par pool
    // (independent derived seeds); printed serially in length order.
    let seeds = SeedSequence::new(0xAD01);
    let lens = [10_000usize, 100_000, 1_000_000];
    let sigma_rows: Vec<(usize, f64)> = gps_par::par_map_indexed(&lens, |k, &len| {
        let mut s = src.clone();
        let mut rng = seeds.rng("trace", k as u64);
        s.reset(&mut rng);
        let trace = ArrivalTrace::record(&mut s, len, &mut rng);
        (len, LeakyBucket::min_sigma(rho, trace.slots()))
    });
    for &(len, sigma) in &sigma_rows {
        println!("  minimal σ for a {len}-slot trace at rho {rho}: {sigma:.3}");
    }
    let (_, sigma) = *sigma_rows.last().unwrap();

    let det = rpps_admission(AffineCurve::new(sigma, rho), 1.0, target.delay);
    let stat_ebb = max_rpps_sessions(ebb, 1.0, target, TimeModel::Discrete);

    // Improved: direct LNT94 bound at g = 1/n; binary search on n.
    let admits_improved = |n: usize| -> bool {
        let g = 1.0 / n as f64;
        match queue_tail_bound(src.as_markov(), g) {
            Some(b) => b.delay_from_backlog(g).tail(target.delay) <= target.epsilon,
            None => false,
        }
    };
    let mut stat_improved = 0usize;
    for n in 1..=2000 {
        if admits_improved(n) {
            stat_improved = n;
        } else if stat_improved > 0 {
            break;
        }
    }

    let stability = (1.0 / src.mean()).floor() as usize - 1;

    println!("\nadmitted sessions:");
    println!("  deterministic PG (σ from 1M-slot trace): {det}");
    println!("  statistical (Theorem 10, E.B.B.):        {stat_ebb}");
    println!("  statistical (LNT94-direct):              {stat_improved}");
    println!("  stability ceiling (Σ mean < r):          {stability}");
    println!(
        "  utilization: det {:.1}% | EBB {:.1}% | improved {:.1}% (of mean-rate ceiling)",
        100.0 * det as f64 / stability as f64,
        100.0 * stat_ebb as f64 / stability as f64,
        100.0 * stat_improved as f64 / stability as f64
    );

    let mut csv = CsvWriter::create(
        "admission",
        &["deterministic", "stat_ebb", "stat_improved", "stability"],
    )
    .expect("csv");
    csv.row(&[
        det as f64,
        stat_ebb as f64,
        stat_improved as f64,
        stability as f64,
    ])
    .expect("row");
    let rows = csv.rows();
    let path = csv.finish().expect("finish");
    println!("written: {}", path.display());

    let mut manifest = RunManifest::new("admission")
        .seed(0xAD01)
        .param("rho", rho)
        .param("delay_target", target.delay)
        .param("epsilon", target.epsilon);
    manifest.output("admission.csv", rows);
    finish_obs(obs, manifest).expect("obs teardown");
}
