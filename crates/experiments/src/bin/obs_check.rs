//! Integration check for the live telemetry server and the flight
//! recorder: runs a tiny campaign with the exporter bound to an ephemeral
//! port and tracing armed, fetches `/metrics`, `/metrics.json`,
//! `/health`, and the live `/progress` tracker over plain TCP (no
//! external HTTP client), verifies the responses and the scheduler
//! accounting gauges, and round-trips the exported Chrome trace through
//! the in-tree JSON parser. Exits nonzero on any failure —
//! `scripts/verify.sh` runs this instead of depending on `curl`.

use gps_experiments::{init_obs, serve_addr_from_args};
use gps_obs::exporter::http_get;
use gps_sim::runner::{run_single_node_campaign, SingleNodeRunConfig};
use gps_sources::{OnOffSource, SlotSource};

fn check(name: &str, ok: bool, detail: &str) -> bool {
    if ok {
        println!("ok   {name}");
    } else {
        println!("FAIL {name}: {detail}");
    }
    ok
}

/// Stands up an [`gps_analysis::AdmissionEngine`] behind
/// [`gps_obs::Exporter::serve_with_telemetry`] the way `admitd` does,
/// then drives scripted admit/depart load over a single keep-alive
/// connection and asserts the JSON endpoints, the `admission_cache_*`
/// counters, the `admission_region_occupancy` gauges, the per-route
/// request telemetry (counters + HDR latency buckets), and the `/slo`
/// burn-rate surface.
fn admission_service_checks() -> bool {
    use gps_analysis::{AdmissionEngine, CertBackend, ClassSpec, QosTarget};
    use gps_ebb::{EbbProcess, TimeModel};
    use gps_obs::exporter::HttpClient;
    use gps_obs::metrics::Registry;
    use gps_obs::{Exporter, RouteHandler, RouteResponse, SloSpec, TelemetryConfig};
    use std::sync::{Arc, Mutex};

    let classes = vec![
        ClassSpec::new(
            "voice",
            EbbProcess::new(0.02, 1.0, 17.4),
            QosTarget::new(5.0, 1e-6),
        ),
        ClassSpec::new(
            "video",
            EbbProcess::new(0.08, 2.0, 6.0),
            QosTarget::new(10.0, 1e-4),
        ),
    ];
    let engine = AdmissionEngine::with_cache_cap(
        classes,
        1.0,
        TimeModel::Discrete,
        CertBackend::EffectiveBandwidth,
        1 << 12,
    )
    .expect("engine builds");
    let registry = Registry::new();
    let engine = Arc::new(Mutex::new(engine));
    let handler: RouteHandler = {
        let engine = Arc::clone(&engine);
        let registry = registry.clone();
        Arc::new(move |path: &str| {
            let (route, query) = match path.split_once('?') {
                Some((r, q)) => (r, Some(q)),
                None => (path, None),
            };
            let class: usize = query
                .and_then(|q| q.strip_prefix("class="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            let mut engine = engine.lock().expect("engine poisoned");
            let body = match route {
                "/admit" => {
                    let d = engine.admit(class);
                    format!(
                        "{{\"accepted\": {}, \"sessions\": {}}}",
                        d.accepted, d.sessions
                    )
                }
                "/depart" => {
                    let d = engine.depart(class);
                    format!(
                        "{{\"accepted\": {}, \"sessions\": {}}}",
                        d.accepted, d.sessions
                    )
                }
                "/region" => {
                    let rows: Vec<String> = engine
                        .region()
                        .iter()
                        .map(|r| {
                            format!(
                                "{{\"name\": \"{}\", \"sessions\": {}, \"headroom\": {}}}",
                                r.name, r.sessions, r.headroom
                            )
                        })
                        .collect();
                    format!("{{\"classes\": [{}]}}", rows.join(", "))
                }
                _ => return None,
            };
            engine.publish(&registry);
            Some(RouteResponse::json(200, body))
        })
    };
    let telemetry = TelemetryConfig::new("obs-check-admit")
        .with_slos(vec![SloSpec::availability("availability", 0.999)]);
    let exporter =
        Exporter::serve_with_telemetry("127.0.0.1:0", registry.clone(), Some(handler), telemetry)
            .expect("bind");
    let addr = exporter.local_addr();

    let mut ok = true;
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            ok = check("admitd connect", false, &e.to_string());
            exporter.shutdown();
            return ok;
        }
    };
    // Scripted load on one keep-alive connection: admits on both classes
    // until the first rejection, then a depart and a re-admit.
    let mut last_accepted = true;
    let mut decisions = 0usize;
    while last_accepted && decisions < 80 {
        match client.get(&format!("/admit?class={}", decisions % 2)) {
            Ok((status, body)) => {
                ok &= check(
                    "admit status",
                    status == 200,
                    &format!("status {status} at decision {decisions}"),
                );
                last_accepted = body.contains("\"accepted\": true");
                decisions += 1;
            }
            Err(e) => {
                ok = check("admit request", false, &e.to_string());
                break;
            }
        }
        if !ok {
            break;
        }
    }
    ok &= check(
        "admission saturates",
        !last_accepted && decisions > 2,
        &format!("{decisions} decisions, last accepted: {last_accepted}"),
    );
    let rejected_class = (decisions - 1) % 2;
    if let Ok((_, body)) = client.get(&format!("/depart?class={rejected_class}")) {
        ok &= check(
            "depart accepted",
            body.contains("\"accepted\": true"),
            &body,
        );
    }
    if let Ok((_, body)) = client.get(&format!("/admit?class={rejected_class}")) {
        ok &= check(
            "slot reopens after depart",
            body.contains("\"accepted\": true"),
            &body,
        );
    }
    match client.get("/region") {
        Ok((status, body)) => {
            let parsed = gps_obs::json::parse(&body);
            ok &= check(
                "/region parses with classes",
                status == 200
                    && parsed
                        .as_ref()
                        .ok()
                        .and_then(|d| {
                            if let Some(gps_obs::json::Json::Arr(rows)) = d.get("classes") {
                                Some(rows.len())
                            } else {
                                None
                            }
                        })
                        .map(|n| n == 2)
                        .unwrap_or(false),
                &body,
            );
        }
        Err(e) => ok = check("/region", false, &e.to_string()),
    }
    // All of the above rode one connection; the exposition must show the
    // admission counters and gauges the engine published.
    match client.get("/metrics") {
        Ok((status, body)) => {
            ok &= check(
                "/metrics admission counters",
                status == 200
                    && body.contains("admission_cache_hits_total")
                    && body.contains("admission_cache_misses_total"),
                "missing admission_cache_* counters",
            );
            ok &= check(
                "/metrics region occupancy",
                body.contains("admission_region_occupancy{class=\"voice\"}")
                    && body.contains("admission_region_occupancy{class=\"video\"}"),
                "missing admission_region_occupancy gauges",
            );
            ok &= check(
                "/metrics per-route request counters",
                body.contains("obs_http_requests_total{route=\"/admit\",status=\"200\"}"),
                "missing obs_http_requests_total route series",
            );
            ok &= check(
                "/metrics HDR latency buckets",
                body.contains("obs_http_request_duration_ns_bucket{route=\"/admit\",le=\"")
                    && body.contains("obs_http_request_duration_ns_count{route=\"/admit\"}"),
                "missing obs_http_request_duration_ns histogram series",
            );
        }
        Err(e) => ok = check("/metrics admission", false, &e.to_string()),
    }
    match client.get("/slo") {
        Ok((status, body)) => {
            let parsed = gps_obs::json::parse(&body);
            let first_slo = parsed.as_ref().ok().and_then(|d| {
                if let Some(gps_obs::json::Json::Arr(slos)) = d.get("slos") {
                    slos.first().cloned()
                } else {
                    None
                }
            });
            ok &= check(
                "/slo burn-rate JSON",
                status == 200
                    && first_slo
                        .as_ref()
                        .map(|s| {
                            s.get("budget_remaining").and_then(|v| v.as_f64()).is_some()
                                && s.get("fast")
                                    .and_then(|w| w.get("burn_rate"))
                                    .and_then(|v| v.as_f64())
                                    .is_some()
                        })
                        .unwrap_or(false),
                &body,
            );
        }
        Err(e) => ok = check("/slo", false, &e.to_string()),
    }
    match client.get("/health") {
        Ok((status, body)) => {
            ok &= check(
                "telemetry /health names the service",
                status == 200 && body.contains("\"service\":\"obs-check-admit\""),
                &body,
            );
        }
        Err(e) => ok = check("telemetry /health", false, &e.to_string()),
    }
    let stats = engine.lock().expect("engine poisoned").cache_stats();
    ok &= check(
        "warm cache hits dominate",
        stats.hits > stats.misses,
        &format!("{} hits vs {} misses", stats.hits, stats.misses),
    );
    exporter.shutdown();
    ok
}

fn main() {
    // Default to an ephemeral loopback port so the check never collides,
    // while still honoring an explicit --serve / GPS_OBS_SERVE.
    if serve_addr_from_args().is_none() {
        std::env::set_var("GPS_OBS_SERVE", "127.0.0.1:0");
    }
    let setup = init_obs("obs_check", true);
    // Exercise the full instrumented path: span timing (scheduler
    // accounting + progress gauges) and the timeline flight recorder.
    gps_obs::global().set_timing(true);
    gps_obs::trace::configure(gps_obs::TraceMode::Timing);
    let addr = match setup.exporter_addr() {
        Some(a) => a,
        None => {
            println!("FAIL exporter did not start");
            std::process::exit(1);
        }
    };

    // A tiny campaign so the registry has live data to expose.
    let cfg = SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 100,
        measure: 2_000,
        seed: 20260806,
        backlog_grid: (0..20).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..20).map(|i| i as f64).collect(),
    };
    let mk = |_: u64| -> Vec<Box<dyn SlotSource>> {
        OnOffSource::paper_table1()
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn SlotSource>)
            .collect()
    };
    let reports = run_single_node_campaign(&cfg, 2, mk);
    assert_eq!(reports.len(), 2);

    let mut ok = true;
    match http_get(addr, "/health") {
        Ok((status, body)) => {
            ok &= check("/health status", status == 200, &format!("status {status}"));
            let parsed = gps_obs::json::parse(&body);
            ok &= check(
                "/health structured body",
                parsed
                    .as_ref()
                    .ok()
                    .map(|d| {
                        d.get("status").and_then(|v| v.as_str()) == Some("ok")
                            && d.get("uptime_seconds").and_then(|v| v.as_u64()).is_some()
                            && d.get("requests").and_then(|v| v.as_u64()).is_some()
                    })
                    .unwrap_or(false),
                &format!("body {body:?}"),
            );
        }
        Err(e) => ok = check("/health", false, &e.to_string()),
    }
    match http_get(addr, "/healthz") {
        Ok((status, body)) => {
            ok &= check(
                "/healthz plain alias",
                status == 200 && body == "ok\n",
                &format!("status {status}, body {body:?}"),
            );
        }
        Err(e) => ok = check("/healthz", false, &e.to_string()),
    }
    match http_get(addr, "/metrics") {
        Ok((status, body)) => {
            ok &= check(
                "/metrics status",
                status == 200,
                &format!("status {status}"),
            );
            ok &= check(
                "/metrics exposition",
                body.contains("# TYPE") && body.contains("sim_measured_slots_total"),
                &format!("{} bytes, no expected families", body.len()),
            );
            ok &= check(
                "/metrics progress gauges",
                body.contains("sim_progress_done") && body.contains("sim_progress_total"),
                "missing sim_progress_* gauges",
            );
            ok &= check(
                "/metrics pool accounting",
                body.contains("par_pool_workers") && body.contains("par_worker_busy_ns"),
                "missing par.pool/par.worker gauges",
            );
        }
        Err(e) => ok = check("/metrics", false, &e.to_string()),
    }
    match http_get(addr, "/metrics.json") {
        Ok((status, body)) => {
            ok &= check(
                "/metrics.json status",
                status == 200,
                &format!("status {status}"),
            );
            let parsed = gps_obs::json::parse(&body);
            ok &= check(
                "/metrics.json parses",
                parsed
                    .as_ref()
                    .map(|doc| doc.get("counters").is_some())
                    .unwrap_or(false),
                &format!("{parsed:?}"),
            );
        }
        Err(e) => ok = check("/metrics.json", false, &e.to_string()),
    }
    match http_get(addr, "/progress") {
        Ok((status, body)) => {
            ok &= check(
                "/progress status",
                status == 200,
                &format!("status {status}"),
            );
            let parsed = gps_obs::json::parse(&body);
            let field = |k: &str| parsed.as_ref().ok().and_then(|d| d.get(k)?.as_u64());
            ok &= check(
                "/progress campaign",
                parsed
                    .as_ref()
                    .ok()
                    .and_then(|d| d.get("campaign")?.as_str().map(str::to_string))
                    .as_deref()
                    == Some("single_node"),
                &body,
            );
            ok &= check(
                "/progress counts",
                field("total") == Some(2) && field("done") == Some(2),
                &body,
            );
        }
        Err(e) => ok = check("/progress", false, &e.to_string()),
    }
    match http_get(addr, "/nope") {
        Ok((status, _)) => ok &= check("unknown path -> 404", status == 404, &format!("{status}")),
        Err(e) => ok = check("unknown path", false, &e.to_string()),
    }

    // The admission-control service: an engine behind serve_with_routes,
    // driven over one persistent connection — checks the custom routes,
    // keep-alive, the cache counters, and the region gauges end to end.
    ok &= admission_service_checks();

    // Round-trip the flight recorder: export the Chrome trace collected
    // during the campaign, write it out, and re-parse it with the in-tree
    // JSON parser the way the report generator does.
    let trace_path = std::env::temp_dir().join(format!("obs_check_trace_{}.json", addr.port()));
    match gps_obs::trace::export_json("obs_check") {
        Some(body) => {
            std::fs::write(&trace_path, &body).expect("write trace file");
            let text = std::fs::read_to_string(&trace_path).expect("read trace file");
            let events = gps_obs::json::parse(&text).ok().and_then(|doc| {
                if let Some(gps_obs::json::Json::Arr(evs)) = doc.get("traceEvents") {
                    Some(evs.len())
                } else {
                    None
                }
            });
            ok &= check(
                "trace file parses",
                events.is_some(),
                "traceEvents missing or not an array",
            );
            ok &= check(
                "trace has events",
                events.unwrap_or(0) > 0,
                "empty traceEvents",
            );
            std::fs::remove_file(&trace_path).ok();
        }
        None => ok = check("trace export", false, "export_json returned None"),
    }
    gps_obs::trace::configure(gps_obs::TraceMode::Off);
    gps_obs::trace::reset();

    // Drop the setup without finish_obs: this check must not overwrite any
    // campaign's results files. The exporter shuts down on drop.
    drop(setup);
    if !ok {
        std::process::exit(1);
    }
    println!("obs_check: all exporter checks passed on {addr}");
}
