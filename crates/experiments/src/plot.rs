//! ASCII log-scale tail plots.
//!
//! The paper's Figures 3–4 are log-scale CCDF plots; these render the
//! same series directly into the terminal so a reproduction run is
//! self-contained. The y axis is `log10(probability)`, the x axis is the
//! threshold (delay or backlog).

/// One named curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label; its first character is the plot glyph.
    pub label: String,
    /// `(x, probability)` points; non-positive probabilities are skipped
    /// (they are off the log scale).
    pub points: Vec<(f64, f64)>,
}

/// Renders curves into an ASCII grid.
///
/// `y_floor` sets the bottom of the log axis (e.g. `1e-12`).
pub fn ascii_log_plot(
    title: &str,
    curves: &[Curve],
    width: usize,
    height: usize,
    y_floor: f64,
) -> String {
    assert!(width >= 16 && height >= 4);
    assert!(y_floor > 0.0 && y_floor < 1.0);
    let xs: Vec<f64> = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| p.0))
        .collect();
    if xs.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let x_min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (x_max - x_min).max(1e-12);
    let y_top = 0.0_f64; // log10(1)
    let y_bot = y_floor.log10();

    let mut grid = vec![vec![b' '; width]; height];
    for c in curves {
        let glyph = c.label.bytes().next().unwrap_or(b'*');
        for &(x, p) in &c.points {
            if p <= 0.0 {
                continue;
            }
            let ly = p.max(y_floor).log10();
            let col = (((x - x_min) / span) * (width - 1) as f64).round() as usize;
            let rowf = (y_top - ly) / (y_top - y_bot) * (height - 1) as f64;
            let row = rowf.round().clamp(0.0, (height - 1) as f64) as usize;
            grid[row][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, line) in grid.iter().enumerate() {
        let ly = y_top - (y_top - y_bot) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("1e{ly:>6.1} |"));
        out.push_str(std::str::from_utf8(line).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "         +{}\n          x: {:.3} .. {:.3}\n",
        "-".repeat(width),
        x_min,
        x_max
    ));
    for c in curves {
        out.push_str(&format!(
            "          {} = {}\n",
            c.label.chars().next().unwrap_or('*'),
            c.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_without_panic_and_contains_glyphs() {
        let c = Curve {
            label: "a-curve".into(),
            points: (0..50)
                .map(|i| (i as f64, (-0.2 * i as f64).exp()))
                .collect(),
        };
        let s = ascii_log_plot("test", &[c], 60, 20, 1e-8);
        assert!(s.contains("test"));
        assert!(s.contains('a'));
        assert!(s.contains("x: 0.000 .. 49.000"));
    }

    #[test]
    fn empty_series() {
        let s = ascii_log_plot("t", &[], 60, 10, 1e-6);
        assert!(s.contains("no data"));
    }

    #[test]
    fn skips_zero_probability() {
        let c = Curve {
            label: "z".into(),
            points: vec![(0.0, 0.0), (1.0, 0.5)],
        };
        let s = ascii_log_plot("t", &[c], 40, 8, 1e-6);
        // Only one plotted point: exactly one 'z' glyph in the grid.
        let count = s.matches('z').count();
        // one in the grid + one in the legend line ("z = z")... label 'z'
        // appears twice in legend.
        assert!(count >= 2);
    }
}
