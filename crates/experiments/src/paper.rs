//! The paper's Section-6.3 numerical scenario, as data.

use gps_core::NetworkTopology;
use gps_ebb::EbbProcess;
use gps_sources::{Lnt94Characterization, OnOffSource, PrefactorKind};

/// Which of the paper's two E.B.B. parameter sets (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSet {
    /// ρ = (0.20, 0.25, 0.20, 0.25).
    Set1,
    /// ρ = (0.17, 0.22, 0.17, 0.22).
    Set2,
}

impl ParamSet {
    /// The envelope rates of this set.
    pub fn rhos(&self) -> [f64; 4] {
        match self {
            ParamSet::Set1 => [0.20, 0.25, 0.20, 0.25],
            ParamSet::Set2 => [0.17, 0.22, 0.17, 0.22],
        }
    }

    /// The paper's printed `(Λ, α)` pairs (Table 2), for cross-checking.
    pub fn printed_table2(&self) -> [(f64, f64); 4] {
        match self {
            ParamSet::Set1 => [(1.0, 1.74), (0.92, 1.76), (0.84, 2.13), (1.0, 1.62)],
            ParamSet::Set2 => [(1.0, 0.729), (0.968, 0.672), (0.929, 0.775), (1.0, 0.655)],
        }
    }

    /// Human label.
    pub fn label(&self) -> &'static str {
        match self {
            ParamSet::Set1 => "Set 1",
            ParamSet::Set2 => "Set 2",
        }
    }
}

/// The four Table-1 sources.
pub fn table1_sources() -> [OnOffSource; 4] {
    OnOffSource::paper_table1()
}

/// Computes the Table-2 E.B.B. characterizations for a parameter set with
/// the LNT94 prefactor (the paper's choice).
pub fn characterize(set: ParamSet) -> [EbbProcess; 4] {
    let sources = table1_sources();
    let rhos = set.rhos();
    core::array::from_fn(|i| {
        Lnt94Characterization::characterize(sources[i].as_markov(), rhos[i], PrefactorKind::Lnt94)
            .expect("rho within (mean, peak)")
            .ebb
    })
}

/// The Figure-2 network under the RPPS assignment for a parameter set.
pub fn figure2_network(set: ParamSet) -> NetworkTopology {
    NetworkTopology::paper_figure2(set.rhos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterizations_match_printed_table2() {
        for set in [ParamSet::Set1, ParamSet::Set2] {
            let got = characterize(set);
            for (e, (lam, alpha)) in got.iter().zip(set.printed_table2()) {
                assert!((e.lambda - lam).abs() < 0.005, "{set:?}: {e}");
                assert!((e.alpha - alpha).abs() < 0.005, "{set:?}: {e}");
            }
        }
    }

    #[test]
    fn network_is_stable_for_both_sets() {
        for set in [ParamSet::Set1, ParamSet::Set2] {
            let rhos = set.rhos();
            assert!(figure2_network(set).is_stable_for(&rhos));
        }
    }
}
