//! Minimal CSV output into the results directory.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// A CSV file being written under `results/`.
#[derive(Debug)]
pub struct CsvWriter {
    path: PathBuf,
    out: BufWriter<File>,
    columns: usize,
    rows: u64,
}

impl CsvWriter {
    /// Creates `results/<name>.csv` with the given header.
    pub fn create(name: &str, header: &[&str]) -> std::io::Result<CsvWriter> {
        Self::create_in(&crate::results_dir(), name, header)
    }

    /// Creates `<dir>/<name>.csv` with the given header.
    pub fn create_in(dir: &Path, name: &str, header: &[&str]) -> std::io::Result<CsvWriter> {
        assert!(!header.is_empty());
        let path = dir.join(format!("{name}.csv"));
        let mut out = BufWriter::new(File::create(&path)?);
        writeln!(out, "{}", header.join(","))?;
        Ok(CsvWriter {
            path,
            out,
            columns: header.len(),
            rows: 0,
        })
    }

    /// Data rows written so far (the header is not counted).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Writes one row of numeric cells.
    pub fn row(&mut self, cells: &[f64]) -> std::io::Result<()> {
        assert_eq!(cells.len(), self.columns, "cell count must match header");
        let line: Vec<String> = cells.iter().map(|c| format!("{c:.10e}")).collect();
        self.rows += 1;
        writeln!(self.out, "{}", line.join(","))
    }

    /// Writes a row with a leading string label.
    pub fn labeled_row(&mut self, label: &str, cells: &[f64]) -> std::io::Result<()> {
        assert_eq!(
            cells.len() + 1,
            self.columns,
            "label plus cells must match header"
        );
        assert!(!label.contains(','), "labels must be comma-free");
        let line: Vec<String> = cells.iter().map(|c| format!("{c:.10e}")).collect();
        self.rows += 1;
        writeln!(self.out, "{label},{}", line.join(","))
    }

    /// Flushes and reports the file path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gps_csv_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_readable_csv() {
        let dir = tmp_dir("basic");
        let mut w = CsvWriter::create_in(&dir, "_test_csv", &["x", "y"]).unwrap();
        w.row(&[1.0, 2.0]).unwrap();
        w.row(&[3.0, 4.5]).unwrap();
        assert_eq!(w.rows(), 2);
        let path = w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines[0], "x,y");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1.0"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labeled_rows() {
        let dir = tmp_dir("labeled");
        let mut w = CsvWriter::create_in(&dir, "_test_csv2", &["session", "value"]).unwrap();
        w.labeled_row("s1", &[0.5]).unwrap();
        assert_eq!(w.rows(), 1);
        let path = w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("s1,5.0"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_length_checked() {
        let dir = tmp_dir("checked");
        let mut w = CsvWriter::create_in(&dir, "_test_csv3", &["a", "b"]).unwrap();
        let r = w.row(&[1.0]);
        // Unreachable: the assert above fires first. Keeps the writer used.
        let _ = r;
    }
}
