//! Minimal CSV output into the results directory.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// A CSV file being written under `results/`.
#[derive(Debug)]
pub struct CsvWriter {
    path: PathBuf,
    out: BufWriter<File>,
    columns: usize,
}

impl CsvWriter {
    /// Creates `results/<name>.csv` with the given header.
    pub fn create(name: &str, header: &[&str]) -> std::io::Result<CsvWriter> {
        assert!(!header.is_empty());
        let path = crate::results_dir().join(format!("{name}.csv"));
        let mut out = BufWriter::new(File::create(&path)?);
        writeln!(out, "{}", header.join(","))?;
        Ok(CsvWriter {
            path,
            out,
            columns: header.len(),
        })
    }

    /// Writes one row of numeric cells.
    pub fn row(&mut self, cells: &[f64]) -> std::io::Result<()> {
        assert_eq!(cells.len(), self.columns, "cell count must match header");
        let line: Vec<String> = cells.iter().map(|c| format!("{c:.10e}")).collect();
        writeln!(self.out, "{}", line.join(","))
    }

    /// Writes a row with a leading string label.
    pub fn labeled_row(&mut self, label: &str, cells: &[f64]) -> std::io::Result<()> {
        assert_eq!(
            cells.len() + 1,
            self.columns,
            "label plus cells must match header"
        );
        assert!(!label.contains(','), "labels must be comma-free");
        let line: Vec<String> = cells.iter().map(|c| format!("{c:.10e}")).collect();
        writeln!(self.out, "{label},{}", line.join(","))
    }

    /// Flushes and reports the file path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_readable_csv() {
        let mut w = CsvWriter::create("_test_csv", &["x", "y"]).unwrap();
        w.row(&[1.0, 2.0]).unwrap();
        w.row(&[3.0, 4.5]).unwrap();
        let path = w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines[0], "x,y");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1.0"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn labeled_rows() {
        let mut w = CsvWriter::create("_test_csv2", &["session", "value"]).unwrap();
        w.labeled_row("s1", &[0.5]).unwrap();
        let path = w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("s1,5.0"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_length_checked() {
        let mut w = CsvWriter::create("_test_csv3", &["a", "b"]).unwrap();
        let _ = w.row(&[1.0]);
    }
}
