//! Shared infrastructure for the reproduction experiments.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (or one of the additional validation/ablation studies listed in
//! `DESIGN.md`). This library holds what they share:
//!
//! * [`paper`] — the paper's Section-6.3 scenario as constants: Table-1
//!   source parameters, the two ρ sets, the printed Table-2 values, and
//!   constructors for the Figure-2 network;
//! * [`csv`] — a minimal CSV writer into `results/`;
//! * [`plot`] — ASCII log-scale tail plots, so every figure is visible
//!   directly in the terminal transcript.

pub mod csv;
pub mod paper;
pub mod plot;

/// Resolves the output directory (`results/` under the workspace root,
/// overridable with `GPS_RESULTS_DIR`), creating it if needed.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::env::var("GPS_RESULTS_DIR").unwrap_or_else(|_| {
        // The binaries run from anywhere in the workspace; walk up from
        // the manifest dir to the workspace root.
        let manifest = env!("CARGO_MANIFEST_DIR");
        format!("{manifest}/../../results")
    });
    let path = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("create results dir");
    path
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_exists_after_call() {
        let d = super::results_dir();
        assert!(d.is_dir());
    }
}
