//! Shared infrastructure for the reproduction experiments.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (or one of the additional validation/ablation studies listed in
//! `DESIGN.md`). This library holds what they share:
//!
//! * [`paper`] — the paper's Section-6.3 scenario as constants: Table-1
//!   source parameters, the two ρ sets, the printed Table-2 values, and
//!   constructors for the Figure-2 network;
//! * [`csv`] — a minimal CSV writer into `results/`;
//! * [`plot`] — ASCII log-scale tail plots, so every figure is visible
//!   directly in the terminal transcript;
//! * [`scenarios`] — the named campaign scenarios (`paper`, `overload`)
//!   that `campaignd` and `campaign-worker` resolve on both ends of a
//!   distributed run;
//! * [`service`] — the shared `--out-service` service-health snapshot
//!   (SLO statuses + per-route telemetry) the daemons persist;
//! * [`init_obs`]/[`finish_obs`] — the observability bracket every binary
//!   runs inside: journal sink selection, then metrics snapshot + run
//!   manifest into `results/`.

pub mod csv;
pub mod paper;
pub mod plot;
pub mod scenarios;
pub mod service;

use gps_obs::{Exporter, Level, ObsConfig, RunManifest, SinkKind};
use std::path::PathBuf;
use std::time::Instant;

/// Handle returned by [`init_obs`], consumed by [`finish_obs`].
#[derive(Debug)]
pub struct ObsSetup {
    campaign: String,
    journal_path: Option<PathBuf>,
    exporter: Option<Exporter>,
    start: Instant,
}

impl ObsSetup {
    /// The bound address of the live `/metrics` server, when one was
    /// requested via `--serve` / `GPS_OBS_SERVE` (useful with port 0).
    pub fn exporter_addr(&self) -> Option<std::net::SocketAddr> {
        self.exporter.as_ref().map(|e| e.local_addr())
    }
}

/// The telemetry-server address requested for this run: the value of a
/// `--serve <addr>` / `--serve=<addr>` command-line flag if present,
/// otherwise the `GPS_OBS_SERVE` environment variable, otherwise `None`.
pub fn serve_addr_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--serve" {
            if let Some(addr) = args.next() {
                return Some(addr);
            }
        } else if let Some(addr) = a.strip_prefix("--serve=") {
            return Some(addr.to_string());
        }
    }
    std::env::var("GPS_OBS_SERVE").ok()
}

/// Configures the global observability hub for the campaign named
/// `campaign` (by convention the binary name).
///
/// * `quiet` forces the Noop sink (no journal output at all);
/// * otherwise `GPS_OBS_SINK` picks the sink — `stderr` (the default),
///   `noop`, the shorthand `file` (= `results/<campaign>_journal.ndjson`),
///   or an explicit path;
/// * `GPS_OBS_LEVEL` / `GPS_OBS_TIMING` select verbosity and span timing;
/// * `GPS_OBS_TRACE` arms the flight recorder ([`gps_obs::trace`]) —
///   `1`/`timing` for per-worker timelines, `counts` for the deterministic
///   counts-only digest; [`finish_obs`] exports the collected events to
///   `results/<campaign>_trace.json`;
/// * `--serve <addr>` on the command line or `GPS_OBS_SERVE=<addr>` starts
///   the live telemetry server ([`gps_obs::exporter`]) on `addr` for the
///   duration of the campaign — `/metrics`, `/metrics.json`, `/health`, and
///   the live `/progress` campaign tracker (shut down by [`finish_obs`]
///   after the final metrics snapshot is written).
pub fn init_obs(campaign: &str, quiet: bool) -> ObsSetup {
    let mut cfg = ObsConfig::from_env_or(ObsConfig {
        sink: SinkKind::Stderr,
        level: Level::Info,
        timing: false,
    });
    if quiet {
        cfg.sink = SinkKind::Noop;
    }
    let mut journal_path = None;
    if let SinkKind::File(p) = &cfg.sink {
        let path = if p.as_os_str() == "file" {
            results_dir().join(format!("{campaign}_journal.ndjson"))
        } else {
            p.clone()
        };
        cfg.sink = SinkKind::File(path.clone());
        journal_path = Some(path);
    }
    gps_obs::init(cfg);
    gps_obs::trace::init_from_env();
    gps_obs::info("campaign", "start", &[("name", campaign.into())]);
    let exporter = serve_addr_from_args().and_then(|addr| {
        match Exporter::serve(&addr, gps_obs::metrics().clone()) {
            Ok(e) => {
                eprintln!("telemetry: serving /metrics on http://{}", e.local_addr());
                Some(e)
            }
            Err(err) => {
                eprintln!("telemetry: cannot serve on {addr}: {err}");
                None
            }
        }
    });
    ObsSetup {
        campaign: campaign.to_string(),
        journal_path,
        exporter,
        start: Instant::now(),
    }
}

/// Closes out a campaign: stamps wall-clock time and the journal path on
/// `manifest`, writes `results/<campaign>_metrics.json` (if any metrics
/// were recorded) and `results/<campaign>_manifest.json`.
pub fn finish_obs(setup: ObsSetup, mut manifest: RunManifest) -> std::io::Result<()> {
    let dir = results_dir();
    if let Some(p) = &setup.journal_path {
        manifest.journal(&p.display().to_string());
    }
    manifest.wall_ms(setup.start.elapsed().as_secs_f64() * 1e3);
    let snap = gps_obs::metrics().snapshot();
    if !snap.is_empty() {
        std::fs::write(
            dir.join(format!("{}_metrics.json", setup.campaign)),
            snap.to_json(),
        )?;
    }
    if let Some(body) = gps_obs::trace::export_json(&setup.campaign) {
        let path = dir.join(format!("{}_trace.json", setup.campaign));
        std::fs::write(&path, body)?;
        manifest.trace(&path.display().to_string());
    }
    gps_obs::info(
        "campaign",
        "end",
        &[("name", setup.campaign.as_str().into())],
    );
    manifest.write_to(&dir)?;
    // Shut the telemetry server down last so a scraper polling during the
    // campaign can still observe the final counters.
    if let Some(exporter) = setup.exporter {
        exporter.shutdown();
    }
    Ok(())
}

/// True when `--resume` was passed on the command line: supervised
/// campaigns then restore completed replications from their checkpoint
/// instead of discarding it and recomputing everything.
pub fn resume_flag() -> bool {
    std::env::args().skip(1).any(|a| a == "--resume")
}

/// Default checkpoint location for a supervised campaign:
/// `results/<campaign>_checkpoint.ndjson` (see [`gps_sim::supervise`]).
pub fn checkpoint_path(campaign: &str) -> PathBuf {
    results_dir().join(format!("{campaign}_checkpoint.ndjson"))
}

/// Measurement-length override for smoke runs: `GPS_MEASURE_SLOTS` (a
/// plain integer) replaces `default` when set and parseable.
pub fn measure_slots_or(default: u64) -> u64 {
    std::env::var("GPS_MEASURE_SLOTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Resolves the output directory (`results/` under the workspace root,
/// overridable with `GPS_RESULTS_DIR`), creating it if needed.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::env::var("GPS_RESULTS_DIR").unwrap_or_else(|_| {
        // The binaries run from anywhere in the workspace; walk up from
        // the manifest dir to the workspace root.
        let manifest = env!("CARGO_MANIFEST_DIR");
        format!("{manifest}/../../results")
    });
    let path = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("create results dir");
    path
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_exists_after_call() {
        let d = super::results_dir();
        assert!(d.is_dir());
    }
}
