//! Integration tests over the experiment library: the core computations
//! behind each binary, checked end-to-end without spawning processes.

use gps_analysis::rho_selection::rho_tradeoff;
use gps_analysis::RppsNetworkBounds;
use gps_experiments::csv::CsvWriter;
use gps_experiments::paper::{characterize, figure2_network, table1_sources, ParamSet};
use gps_experiments::plot::{ascii_log_plot, Curve};
use gps_sources::lnt94::queue_tail_bound;

#[test]
fn fig3_curves_are_straight_lines_in_log_space() {
    // The Theorem-15 bound is pure-exponential: log-tail differences over
    // equal steps are constant.
    let sessions = characterize(ParamSet::Set1).to_vec();
    let net = figure2_network(ParamSet::Set1);
    let b = RppsNetworkBounds::new(&net, sessions).unwrap();
    for i in 0..4 {
        let (_, d) = b.paper_fig3_bounds(i);
        let step = 7.0;
        let mut diffs = Vec::new();
        // Stay past the clamp region (tail < 1).
        let start = d.quantile(0.99);
        for k in 0..5 {
            let x = start + k as f64 * step;
            diffs.push(d.log_tail(x) - d.log_tail(x + step));
        }
        for w in diffs.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "session {i}: nonlinear log-tail"
            );
        }
    }
}

#[test]
fn fig4_dominates_fig3_everywhere_past_crossover() {
    let sessions = characterize(ParamSet::Set2).to_vec();
    let net = figure2_network(ParamSet::Set2);
    let b = RppsNetworkBounds::new(&net, sessions).unwrap();
    let sources = table1_sources();
    for (i, src) in sources.iter().enumerate() {
        let g = b.g_net(i);
        let (_, ebb_d) = b.paper_fig3_bounds(i);
        let delta = queue_tail_bound(src.as_markov(), g).unwrap();
        let (_, imp_d) = b.with_delta_bound(i, delta);
        // The improved bound has both smaller prefactor and faster decay:
        // it dominates at every threshold.
        assert!(imp_d.prefactor <= ebb_d.prefactor);
        assert!(imp_d.decay > ebb_d.decay);
        for k in 0..40 {
            let d = k as f64;
            assert!(imp_d.tail(d) <= ebb_d.tail(d) + 1e-15, "session {i} at {d}");
        }
    }
}

#[test]
fn both_sets_same_source_different_characterization() {
    // Sets 1 and 2 describe the same four sources; only ρ differs. The
    // lower-ρ set must have uniformly smaller α.
    let s1 = characterize(ParamSet::Set1);
    let s2 = characterize(ParamSet::Set2);
    for i in 0..4 {
        assert!(s2[i].rho < s1[i].rho);
        assert!(s2[i].alpha < s1[i].alpha);
    }
}

#[test]
fn rho_tradeoff_interpolates_table2() {
    // The sweep should pass (continuously) through the Table-2 points:
    // find the sweep points bracketing ρ = 0.25 for session 2 and check
    // α brackets 1.76.
    let src = &table1_sources()[1];
    let pts = rho_tradeoff(src.as_markov(), 200);
    let below = pts.iter().rfind(|p| p.rho < 0.25).unwrap();
    let above = pts.iter().find(|p| p.rho > 0.25).unwrap();
    assert!(below.alpha < 1.761 && above.alpha > 1.759);
}

#[test]
fn csv_roundtrip_under_results_dir() {
    let mut w = CsvWriter::create("_it_test", &["a", "b"]).unwrap();
    w.row(&[1.5, -2.0]).unwrap();
    let path = w.finish().unwrap();
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.starts_with("a,b\n"));
    assert!(body.contains("1.5"));
    std::fs::remove_file(path).unwrap();
}

#[test]
fn plots_render_bounded_output() {
    let curves: Vec<Curve> = (0..4)
        .map(|i| Curve {
            label: format!("{}", i + 1),
            points: (0..100)
                .map(|k| (k as f64, 0.9f64 * (-0.1 * (i + 1) as f64 * k as f64).exp()))
                .collect(),
        })
        .collect();
    let s = ascii_log_plot("four curves", &curves, 80, 20, 1e-12);
    // Fixed-size grid: exactly 20 grid rows plus title/axis/legend lines.
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(lines.len(), 1 + 20 + 2 + 4);
    for g in ["1", "2", "3", "4"] {
        assert!(s.contains(g));
    }
}
