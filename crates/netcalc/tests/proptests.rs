//! Property-based tests for the deterministic network-calculus baseline.

use gps_netcalc::{AffineCurve, ConcaveCurve, LatencyRate};
use gps_stats::prop::{vec_of, Strategy, StrategyExt};
use gps_stats::{prop_assert, prop_assert_eq, proptest};

/// Strategy: a small set of affine pieces with positive parameters.
fn pieces() -> impl Strategy<Value = Vec<AffineCurve>> {
    vec_of((0.0f64..5.0, 0.05f64..3.0), 1..5)
        .prop_map(|v| v.into_iter().map(|(s, r)| AffineCurve::new(s, r)).collect())
}

proptest! {
    fn concave_eval_is_min_of_pieces(ps in pieces(), t in 0.0f64..50.0) {
        let curve = ConcaveCurve::new(ps.clone());
        let direct = if t <= 0.0 {
            0.0
        } else {
            ps.iter().map(|p| p.eval(t)).fold(f64::INFINITY, f64::min)
        };
        prop_assert!((curve.eval(t) - direct).abs() < 1e-9);
    }

    fn concave_curve_is_nondecreasing(ps in pieces(), t in 0.0f64..40.0, dt in 0.0f64..10.0) {
        let curve = ConcaveCurve::new(ps);
        prop_assert!(curve.eval(t + dt) >= curve.eval(t) - 1e-12);
    }

    fn backlog_bound_dominates_sampled_deviation(
        ps in pieces(),
        rate_mult in 1.05f64..4.0,
        latency in 0.0f64..5.0,
    ) {
        let curve = ConcaveCurve::new(ps);
        let beta = LatencyRate::new(curve.sustained_rate() * rate_mult, latency);
        let qb = curve.backlog_bound(&beta).expect("stable");
        // Sample the deviation densely; the analytic bound must dominate.
        for k in 1..=400 {
            let t = k as f64 * 0.1;
            let dev = curve.eval(t) - beta.eval(t);
            prop_assert!(dev <= qb + 1e-9, "deviation {dev} at {t} exceeds bound {qb}");
        }
    }

    fn delay_bound_dominates_sampled_horizontal_deviation(
        ps in pieces(),
        rate_mult in 1.05f64..4.0,
        latency in 0.0f64..5.0,
    ) {
        let curve = ConcaveCurve::new(ps);
        let beta = LatencyRate::new(curve.sustained_rate() * rate_mult, latency);
        let db = curve.delay_bound(&beta).expect("stable");
        // For sampled t, the catch-up time T + α(t)/R − t must be <= db.
        for k in 1..=400 {
            let t = k as f64 * 0.1;
            let d = beta.latency + curve.eval(t) / beta.rate - t;
            prop_assert!(d <= db + 1e-9, "horizontal deviation {d} at {t} exceeds {db}");
        }
    }

    fn affine_output_propagation_preserves_conformance(
        sigma in 0.0f64..3.0,
        rho in 0.05f64..1.0,
        rate_mult in 1.0f64..3.0,
        latency in 0.0f64..4.0,
    ) {
        // The output curve after a latency-rate server must dominate the
        // input curve shifted by the latency (a simple necessary check).
        let input = AffineCurve::new(sigma, rho);
        let out = input.after_latency_rate(rho * rate_mult, latency);
        prop_assert_eq!(out.rho, input.rho);
        prop_assert!(out.sigma >= input.sigma - 1e-12);
        for k in 0..50 {
            let t = k as f64 * 0.3;
            prop_assert!(out.eval(t) + 1e-9 >= input.eval(t));
        }
    }

    fn dual_bucket_tighter_than_each_component(
        peak_mult in 1.0f64..5.0,
        sigma in 0.1f64..4.0,
        rho in 0.05f64..1.0,
    ) {
        let peak = rho * peak_mult;
        let dual = ConcaveCurve::dual_token_bucket(peak, sigma, rho);
        let beta = LatencyRate::guaranteed_rate(rho * 1.2);
        if let Some(qb) = dual.backlog_bound(&beta) {
            // Never worse than the single sustained bucket's bound.
            let single = beta.backlog_bound(&AffineCurve::new(sigma, rho)).unwrap();
            prop_assert!(qb <= single + 1e-9);
        }
    }
}
