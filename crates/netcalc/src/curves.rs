//! Piecewise-linear concave arrival curves (multi-leaky-bucket
//! envelopes).
//!
//! A single `(σ, ρ)` pair is often loose for real traffic: a source may
//! be constrained by *several* buckets at once — e.g. a peak-rate bucket
//! `(0, P)` plus a sustained-rate bucket `(σ, ρ)` (the classic dual
//! token bucket of ATM/IntServ). The tight envelope is the pointwise
//! minimum of affine curves, which is concave and piecewise linear.
//! This module implements that family with the min-plus performance
//! bounds against latency-rate service curves — rounding out the
//! deterministic baseline.

use crate::arrival::AffineCurve;
use crate::service::LatencyRate;

/// A concave piecewise-linear arrival curve: the pointwise minimum of
/// affine pieces `min_j (σ_j + ρ_j t)` (with `α(0) = 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConcaveCurve {
    /// The affine pieces; kept sorted by descending rate after
    /// normalization (steepest piece binds earliest).
    pieces: Vec<AffineCurve>,
}

impl ConcaveCurve {
    /// Builds a curve from pieces, dropping dominated ones (a piece that
    /// is nowhere the minimum).
    ///
    /// # Panics
    ///
    /// Panics on an empty piece list.
    pub fn new(mut pieces: Vec<AffineCurve>) -> Self {
        assert!(!pieces.is_empty(), "need at least one piece");
        // Lower envelope of lines (convex-hull trick): sort by rate
        // descending (σ ascending on ties), drop same-rate duplicates,
        // then pop any middle line whose region is empty — i.e. when the
        // new line overtakes the first line of the last pair no later
        // than the last pair's own crossover.
        pieces.sort_by(|a, b| {
            b.rho
                .partial_cmp(&a.rho)
                .expect("finite")
                .then(a.sigma.partial_cmp(&b.sigma).expect("finite"))
        });
        let mut kept: Vec<AffineCurve> = Vec::new();
        for p in pieces {
            if let Some(last) = kept.last() {
                if (p.rho - last.rho).abs() < 1e-15 {
                    continue; // same rate, larger σ: dominated
                }
                if p.sigma <= last.sigma {
                    // Flatter with no larger burst: last is dominated
                    // beyond t = 0 everywhere p is.
                    while let Some(last) = kept.last() {
                        if p.sigma <= last.sigma {
                            kept.pop();
                        } else {
                            break;
                        }
                    }
                }
            }
            // Envelope condition: while the previous line never wins.
            while kept.len() >= 2 {
                let a = kept[kept.len() - 2];
                let b = kept[kept.len() - 1];
                let x_ab = (b.sigma - a.sigma) / (a.rho - b.rho);
                let x_ap = (p.sigma - a.sigma) / (a.rho - p.rho);
                if x_ap <= x_ab + 1e-15 {
                    kept.pop();
                } else {
                    break;
                }
            }
            kept.push(p);
        }
        Self { pieces: kept }
    }

    /// Dual token bucket: `min(P·t, σ + ρ·t)` (peak rate `P`, sustained
    /// `(σ, ρ)`).
    pub fn dual_token_bucket(peak: f64, sigma: f64, rho: f64) -> Self {
        assert!(peak >= rho, "peak rate below sustained rate");
        Self::new(vec![
            AffineCurve::new(0.0, peak),
            AffineCurve::new(sigma, rho),
        ])
    }

    /// The (non-dominated) pieces.
    pub fn pieces(&self) -> &[AffineCurve] {
        &self.pieces
    }

    /// Evaluates `α(t) = min_j α_j(t)` (0 at the origin).
    pub fn eval(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        self.pieces
            .iter()
            .map(|p| p.eval(t))
            .fold(f64::INFINITY, f64::min)
    }

    /// Long-term rate: the smallest piece rate.
    pub fn sustained_rate(&self) -> f64 {
        self.pieces
            .iter()
            .map(|p| p.rho)
            .fold(f64::INFINITY, f64::min)
    }

    /// `α(t⁺)` — the right limit, which differs from `eval` only at the
    /// origin, where the curve jumps to the smallest burst term.
    fn eval_right(&self, t: f64) -> f64 {
        if t <= 0.0 {
            self.pieces
                .iter()
                .map(|p| p.sigma)
                .fold(f64::INFINITY, f64::min)
        } else {
            self.eval(t)
        }
    }

    /// Worst-case backlog against a latency-rate server: the vertical
    /// deviation `sup_{t>0} α(t) - β(t)`. For concave α and convex β the
    /// supremum is attained at `0⁺`, at a breakpoint of α, or at the
    /// latency point of β; we evaluate all candidates with right limits.
    pub fn backlog_bound(&self, beta: &LatencyRate) -> Option<f64> {
        if self.sustained_rate() > beta.rate {
            return None;
        }
        let mut candidates = self.breakpoints();
        candidates.push(0.0);
        candidates.push(beta.latency);
        let mut best = 0.0_f64;
        for t in candidates {
            best = best.max(self.eval_right(t) - beta.eval(t));
        }
        Some(best)
    }

    /// Worst-case delay: the horizontal deviation. For traffic arriving
    /// at `t`, the candidate is `T + α(t⁺)/R - t`; by concavity the
    /// maximum is at `0⁺` or a breakpoint.
    pub fn delay_bound(&self, beta: &LatencyRate) -> Option<f64> {
        if self.sustained_rate() > beta.rate {
            return None;
        }
        let mut worst = beta.latency; // even zero traffic waits T at most
        let mut candidates = self.breakpoints();
        candidates.push(0.0);
        for t in candidates {
            let a = self.eval_right(t);
            // Time at which β catches up with α(t⁺): T + α/R; the
            // traffic arriving at t waits that minus t.
            let d = beta.latency + a / beta.rate - t;
            worst = worst.max(d);
        }
        Some(worst.max(0.0))
    }

    /// Abscissae where the binding piece changes (intersections of
    /// consecutive kept pieces), plus `0`.
    fn breakpoints(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for w in self.pieces.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            // a has the larger rate and smaller σ: they intersect at
            // t = (σ_b - σ_a)/(ρ_a - ρ_b) > 0.
            let t = (b.sigma - a.sigma) / (a.rho - b.rho);
            if t.is_finite() && t > 0.0 {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_bucket_eval() {
        let c = ConcaveCurve::dual_token_bucket(1.0, 2.0, 0.25);
        assert_eq!(c.eval(0.0), 0.0);
        assert!((c.eval(1.0) - 1.0).abs() < 1e-12); // peak binds
                                                    // Crossover at t where t = 2 + 0.25t -> t = 8/3.
        assert!((c.eval(8.0 / 3.0) - 8.0 / 3.0).abs() < 1e-12);
        assert!((c.eval(10.0) - 4.5).abs() < 1e-12); // sustained binds
        assert_eq!(c.sustained_rate(), 0.25);
    }

    #[test]
    fn dominated_pieces_dropped() {
        let c = ConcaveCurve::new(vec![
            AffineCurve::new(0.0, 1.0),
            AffineCurve::new(5.0, 1.0), // same rate, bigger σ: dominated
            AffineCurve::new(2.0, 0.25),
        ]);
        assert_eq!(c.pieces().len(), 2);
    }

    #[test]
    fn tighter_than_single_bucket() {
        // Dual bucket's backlog bound against a rate-R server beats the
        // single sustained bucket's σ whenever the peak constrains the
        // burst drain.
        let dual = ConcaveCurve::dual_token_bucket(0.6, 2.0, 0.2);
        let single = AffineCurve::new(2.0, 0.2);
        let beta = LatencyRate::guaranteed_rate(0.5);
        let qb_dual = dual.backlog_bound(&beta).unwrap();
        let qb_single = beta.backlog_bound(&single).unwrap();
        assert!(
            qb_dual < qb_single,
            "dual {qb_dual} should beat single {qb_single}"
        );
        // And the bound is exactly the deviation at the crossover point:
        // t* = 2/(0.6-0.2) = 5; α(5) = 3.0; β(5) = 2.5 -> 0.5.
        assert!((qb_dual - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delay_bound_dual_bucket() {
        let dual = ConcaveCurve::dual_token_bucket(0.6, 2.0, 0.2);
        let beta = LatencyRate::guaranteed_rate(0.5);
        let d = dual.delay_bound(&beta).unwrap();
        // Max horizontal deviation also at the crossover: traffic at t*=5
        // has α = 3.0, served by time 6 -> delay 1.0.
        assert!((d - 1.0).abs() < 1e-12);
        // Single bucket would give σ/R = 4.
        assert!(d < 4.0);
    }

    #[test]
    fn single_piece_matches_affine_bounds() {
        let c = ConcaveCurve::new(vec![AffineCurve::new(1.5, 0.3)]);
        let beta = LatencyRate::new(0.5, 2.0);
        assert!(
            (c.backlog_bound(&beta).unwrap()
                - beta.backlog_bound(&AffineCurve::new(1.5, 0.3)).unwrap())
            .abs()
                < 1e-9
        );
        assert!(
            (c.delay_bound(&beta).unwrap()
                - beta.delay_bound(&AffineCurve::new(1.5, 0.3)).unwrap())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn unstable_is_none() {
        let c = ConcaveCurve::dual_token_bucket(1.0, 1.0, 0.6);
        let beta = LatencyRate::guaranteed_rate(0.5);
        assert!(c.backlog_bound(&beta).is_none());
        assert!(c.delay_bound(&beta).is_none());
    }

    #[test]
    fn latency_point_counts_for_backlog() {
        // With latency T, the burst accumulated by T is a candidate.
        let c = ConcaveCurve::dual_token_bucket(2.0, 0.5, 0.1);
        let beta = LatencyRate::new(0.2, 3.0);
        let qb = c.backlog_bound(&beta).unwrap();
        assert!(qb >= c.eval(3.0) - 1e-12);
    }
}
