//! Deterministic network-calculus baseline (Cruz / Parekh–Gallager).
//!
//! The paper positions its statistical bounds against the *worst-case
//! deterministic* analysis of Parekh & Gallager, in which each session is
//! leaky-bucket constrained — `A(τ,t) <= σ_i + ρ_i (t-τ)` (Cruz's LBAP) —
//! and every bound is a hard guarantee. This crate rebuilds that baseline:
//!
//! * [`arrival::AffineCurve`] — `(σ, ρ)` arrival curves with the usual
//!   algebra (sum, conformance, output propagation);
//! * [`service::LatencyRate`] — `β(t) = R·max(0, t - T)` service curves
//!   and the min-plus backlog/delay/output bounds;
//! * [`pg`] — GPS-specific results: the guaranteed-rate service curve
//!   `g_i`, worst-case single-node bounds, and the RPPS network bounds
//!   (`D_i <= σ_i/g_i^{net}`, independent of route length — the
//!   deterministic twin of Theorem 15);
//! * [`pg::rpps_admission`] — deterministic admission counts, used by the
//!   experiments to quantify the utilization gain of statistical
//!   admission (the paper's Section 1 motivation).
//!
//! Two facts from the paper worth keeping in mind when comparing: the
//! deterministic bounds are *attainable* (tight in the worst case) but
//! "usually very conservative" in behavior; and on-off Markov sources are
//! **not** LBAP-constrained at all (any σ is eventually exceeded), so
//! deterministic analysis simply does not apply to the paper's Section 6.3
//! example — the experiments show this by reporting the minimum σ needed
//! to police a finite trace, which grows with the trace length.

pub mod arrival;
pub mod curves;
pub mod pg;
pub mod service;

pub use arrival::AffineCurve;
pub use curves::ConcaveCurve;
pub use pg::{rpps_network_bounds, DeterministicBounds};
pub use service::LatencyRate;
