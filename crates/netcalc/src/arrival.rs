//! Affine `(σ, ρ)` arrival curves (Cruz's LBAP model).
//!
//! `A(τ,t] <= σ + ρ (t-τ)` for all windows. Closed under addition
//! (`σ` and `ρ` add) and under passage through a latency-rate server
//! (`σ` inflates by `ρ·T`).

/// An affine arrival curve `α(t) = σ + ρ t` (for `t > 0`; `α(0) = 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineCurve {
    /// Burst parameter `σ >= 0`.
    pub sigma: f64,
    /// Sustained rate `ρ >= 0`.
    pub rho: f64,
}

impl AffineCurve {
    /// Creates a curve; panics on negative parameters.
    pub fn new(sigma: f64, rho: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be nonnegative");
        assert!(rho >= 0.0, "rho must be nonnegative");
        Self { sigma, rho }
    }

    /// Evaluates `α(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            self.sigma + self.rho * t
        }
    }

    /// The curve of the aggregate of two flows.
    pub fn add(&self, other: &AffineCurve) -> AffineCurve {
        AffineCurve::new(self.sigma + other.sigma, self.rho + other.rho)
    }

    /// Aggregate of many flows.
    pub fn sum(curves: &[AffineCurve]) -> AffineCurve {
        curves
            .iter()
            .fold(AffineCurve::new(0.0, 0.0), |acc, c| acc.add(c))
    }

    /// Checks whether a slotted trace conforms to this curve
    /// (O(n), Lindley recursion on the excess).
    pub fn conforms(&self, trace: &[f64]) -> bool {
        let mut excess = 0.0_f64;
        for &a in trace {
            excess = (excess + a - self.rho).max(0.0);
            if excess > self.sigma + 1e-12 {
                return false;
            }
        }
        true
    }

    /// The output arrival curve after a latency-rate server `(R, T)` with
    /// `R >= ρ`: bursts inflate by `ρ·T` (the classic output-propagation
    /// rule `α* = α ⊘ β`).
    pub fn after_latency_rate(&self, rate: f64, latency: f64) -> AffineCurve {
        assert!(
            rate >= self.rho,
            "server rate {rate} below sustained rate {}",
            self.rho
        );
        AffineCurve::new(self.sigma + self.rho * latency, self.rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_origin() {
        let c = AffineCurve::new(2.0, 0.5);
        assert_eq!(c.eval(0.0), 0.0);
        assert_eq!(c.eval(-1.0), 0.0);
        assert_eq!(c.eval(4.0), 4.0);
    }

    #[test]
    fn addition() {
        let a = AffineCurve::new(1.0, 0.2);
        let b = AffineCurve::new(2.0, 0.3);
        let s = a.add(&b);
        assert_eq!(s.sigma, 3.0);
        assert_eq!(s.rho, 0.5);
        assert_eq!(AffineCurve::sum(&[a, b, a]).sigma, 4.0);
    }

    #[test]
    fn conformance() {
        let c = AffineCurve::new(1.0, 0.5);
        assert!(c.conforms(&[1.0, 0.5, 0.5, 1.0, 0.0, 0.5]));
        assert!(!c.conforms(&[1.0, 1.0, 1.0]));
    }

    #[test]
    fn output_propagation_inflates_burst() {
        let c = AffineCurve::new(1.0, 0.4);
        let out = c.after_latency_rate(0.6, 2.5);
        assert_eq!(out.rho, 0.4);
        assert!((out.sigma - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "server rate")]
    fn output_requires_capacity() {
        let _ = AffineCurve::new(1.0, 0.8).after_latency_rate(0.5, 1.0);
    }
}
