//! Parekh–Gallager worst-case bounds for GPS with leaky-bucket sessions.
//!
//! Single node: a fluid GPS server guarantees session `i` the rate-`g_i`
//! zero-latency service curve whenever backlogged, so for `ρ_i <= g_i`
//! (the "locally stable"/H₁ case):
//!
//! ```text
//! Q_i* <= σ_i,      D_i* <= σ_i / g_i
//! ```
//!
//! For sessions with `ρ_i > g_i` (feasible under global stability), the
//! class-relative machinery applies deterministically: with the lower
//! feasible-partition classes aggregated, session `i` is guaranteed the
//! latency-rate curve `(ĝ_i, T_i)` with `ĝ_i = ψ_i (r - Σ_{lower} ρ_j)`
//! and `T_i = Σ_{lower} σ_j / ĝ_i` — the deterministic twin of our
//! Theorem-11 reading.
//!
//! RPPS network (PG's multiple-node paper): the bottleneck rate
//! `g_i^{net}` yields route-independent bounds `Q_i^{net} <= σ_i`,
//! `D_i^{net} <= σ_i/g_i^{net}` — the deterministic twin of Theorem 15.

use crate::arrival::AffineCurve;
use crate::service::LatencyRate;
use gps_core::{FeasiblePartition, GpsAssignment, NetworkTopology};

/// Worst-case (deterministic) per-session results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeterministicBounds {
    /// Worst-case backlog.
    pub backlog: f64,
    /// Worst-case delay.
    pub delay: f64,
}

/// Single-node PG bounds for all sessions. Returns `None` when
/// `Σ ρ_i >= r` (no feasible partition exists / unstable).
pub fn single_node_bounds(
    curves: &[AffineCurve],
    assignment: &GpsAssignment,
) -> Option<Vec<DeterministicBounds>> {
    assert_eq!(curves.len(), assignment.len());
    let rhos: Vec<f64> = curves.iter().map(|c| c.rho).collect();
    let partition = FeasiblePartition::compute(&rhos, assignment)?;
    let mut out = Vec::with_capacity(curves.len());
    for i in 0..curves.len() {
        let k = partition.class_of(i);
        let lower = partition.lower_classes(k);
        let lower_rho: f64 = lower.iter().map(|&j| rhos[j]).sum();
        let lower_sigma: f64 = lower.iter().map(|&j| curves[j].sigma).sum();
        let not_lower: Vec<usize> = (0..curves.len()).filter(|j| !lower.contains(j)).collect();
        let g_hat = assignment.share_within(i, &not_lower) * (assignment.rate() - lower_rho);
        debug_assert!(g_hat > rhos[i], "feasible partition guarantees headroom");
        let latency = if lower.is_empty() {
            0.0
        } else {
            lower_sigma / g_hat
        };
        let beta = LatencyRate::new(g_hat, latency);
        out.push(DeterministicBounds {
            backlog: beta.backlog_bound(&curves[i])?,
            delay: beta.delay_bound(&curves[i])?,
        });
    }
    Some(out)
}

/// RPPS network bounds: `Q_i <= σ_i`, `D_i <= σ_i/g_i^{net}` with the
/// bottleneck guaranteed rate. Returns `None` when some node is unstable.
pub fn rpps_network_bounds(
    topology: &NetworkTopology,
    curves: &[AffineCurve],
) -> Option<Vec<DeterministicBounds>> {
    assert_eq!(curves.len(), topology.num_sessions());
    let rhos: Vec<f64> = curves.iter().map(|c| c.rho).collect();
    if !topology.is_stable_for(&rhos) {
        return None;
    }
    let mut g_net = vec![f64::INFINITY; curves.len()];
    for m in 0..topology.num_nodes() {
        let ids = topology.sessions_at(m);
        if ids.is_empty() {
            continue;
        }
        let load: f64 = ids.iter().map(|&i| rhos[i]).sum();
        for &i in &ids {
            g_net[i] = g_net[i].min(rhos[i] / load * topology.node_rate(m));
        }
    }
    Some(
        curves
            .iter()
            .zip(&g_net)
            .map(|(c, &g)| DeterministicBounds {
                backlog: c.sigma,
                delay: c.sigma / g,
            })
            .collect(),
    )
}

/// Deterministic RPPS admission: the largest number of homogeneous
/// `(σ, ρ)` sessions on a rate-`rate` GPS server such that every session's
/// worst-case delay `σ/g = nσ/rate` stays at or below `delay_target`
/// (and `nρ < rate`).
pub fn rpps_admission(curve: AffineCurve, rate: f64, delay_target: f64) -> usize {
    assert!(delay_target > 0.0);
    if curve.sigma == 0.0 {
        // Zero burst: only the stability constraint binds.
        if curve.rho == 0.0 {
            return usize::MAX;
        }
        let n = (rate / curve.rho).ceil() as usize;
        return n.saturating_sub(1).max(if (n as f64) * curve.rho < rate {
            n
        } else {
            n - 1
        });
    }
    // n <= rate·d/σ and n·ρ < rate.
    let by_delay = (rate * delay_target / curve.sigma).floor() as usize;
    let by_stability = if curve.rho > 0.0 {
        let n = (rate / curve.rho).floor() as usize;
        if n as f64 * curve.rho >= rate {
            n.saturating_sub(1)
        } else {
            n
        }
    } else {
        usize::MAX
    };
    by_delay.min(by_stability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::SessionSpec;

    #[test]
    fn h1_sessions_get_sigma_over_g() {
        let curves = vec![AffineCurve::new(2.0, 0.2), AffineCurve::new(1.0, 0.25)];
        let a = GpsAssignment::rpps(&[0.2, 0.25], 1.0);
        let b = single_node_bounds(&curves, &a).unwrap();
        let g0 = 0.2 / 0.45;
        assert!((b[0].backlog - 2.0).abs() < 1e-12);
        assert!((b[0].delay - 2.0 / g0).abs() < 1e-12);
    }

    #[test]
    fn higher_class_pays_lower_class_bursts() {
        // Session 1 in H2: latency σ_0/ĝ and backlog σ_1 + ρ_1 T.
        let curves = vec![AffineCurve::new(1.0, 0.1), AffineCurve::new(2.0, 0.55)];
        let a = GpsAssignment::unit_rate(vec![3.0, 1.0]);
        let b = single_node_bounds(&curves, &a).unwrap();
        let g_hat = 1.0 * (1.0 - 0.1); // ψ = 1, lower load .1
        let latency = 1.0 / g_hat;
        assert!((b[1].delay - (latency + 2.0 / g_hat)).abs() < 1e-12);
        assert!((b[1].backlog - (2.0 + 0.55 * latency)).abs() < 1e-12);
        // The H1 session is unaffected by session 1's burst.
        assert!((b[0].backlog - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unstable_none() {
        let curves = vec![AffineCurve::new(1.0, 0.6), AffineCurve::new(1.0, 0.5)];
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0]);
        assert!(single_node_bounds(&curves, &a).is_none());
    }

    #[test]
    fn rpps_network_route_independent() {
        let curves = vec![
            AffineCurve::new(1.0, 0.2),
            AffineCurve::new(1.5, 0.25),
            AffineCurve::new(1.0, 0.2),
            AffineCurve::new(1.5, 0.25),
        ];
        let net = NetworkTopology::paper_figure2([0.2, 0.25, 0.2, 0.25]);
        let b = rpps_network_bounds(&net, &curves).unwrap();
        // Bottleneck node 2: g0 = .2/.9.
        assert!((b[0].delay - 1.0 / (0.2 / 0.9)).abs() < 1e-12);
        assert!((b[0].backlog - 1.0).abs() < 1e-12);
    }

    #[test]
    fn network_bound_matches_single_node_when_one_hop() {
        let curves = vec![AffineCurve::new(2.0, 0.2), AffineCurve::new(1.0, 0.25)];
        let topo = NetworkTopology::new(
            vec![1.0],
            vec![
                SessionSpec::with_uniform_phi(vec![0], 0.2),
                SessionSpec::with_uniform_phi(vec![0], 0.25),
            ],
        );
        let net_b = rpps_network_bounds(&topo, &curves).unwrap();
        let a = GpsAssignment::rpps(&[0.2, 0.25], 1.0);
        let node_b = single_node_bounds(&curves, &a).unwrap();
        for (x, y) in net_b.iter().zip(&node_b) {
            assert!((x.delay - y.delay).abs() < 1e-12);
            assert!((x.backlog - y.backlog).abs() < 1e-12);
        }
    }

    #[test]
    fn admission_counts() {
        let c = AffineCurve::new(0.5, 0.02);
        // Delay target 10: n <= 1·10/0.5 = 20; stability: n <= 49.
        assert_eq!(rpps_admission(c, 1.0, 10.0), 20);
        // Lax delay: stability binds.
        assert_eq!(rpps_admission(c, 1.0, 1e6), 49);
    }
}
