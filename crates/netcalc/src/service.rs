//! Latency-rate service curves and the min-plus performance bounds.
//!
//! A server offers a flow the service curve `β(t) = R·max(0, t-T)` when in
//! any backlogged period of length `t` the flow receives at least `β(t)`
//! service. For an affine arrival curve `α = (σ, ρ)` with `ρ <= R`:
//!
//! * backlog bound: `sup_t α(t) - β(t) = σ + ρT` (vertical deviation);
//! * delay bound: `T + σ/R` (horizontal deviation);
//!
//! both tight for greedy sources. A fluid GPS server offers each session
//! the zero-latency curve `β(t) = g_i t`.

use crate::arrival::AffineCurve;

/// A latency-rate service curve `β(t) = R·max(0, t - T)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRate {
    /// Service rate `R > 0`.
    pub rate: f64,
    /// Latency `T >= 0`.
    pub latency: f64,
}

impl LatencyRate {
    /// Creates a service curve; panics on invalid parameters.
    pub fn new(rate: f64, latency: f64) -> Self {
        assert!(rate > 0.0, "service rate must be positive");
        assert!(latency >= 0.0, "latency must be nonnegative");
        Self { rate, latency }
    }

    /// Fluid GPS's guaranteed-rate curve: `β(t) = g t`.
    pub fn guaranteed_rate(g: f64) -> Self {
        Self::new(g, 0.0)
    }

    /// Evaluates `β(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        self.rate * (t - self.latency).max(0.0)
    }

    /// Worst-case backlog for an `α`-constrained flow (vertical
    /// deviation); `None` if `α.rho > rate` (unstable).
    pub fn backlog_bound(&self, alpha: &AffineCurve) -> Option<f64> {
        if alpha.rho > self.rate {
            return None;
        }
        Some(alpha.sigma + alpha.rho * self.latency)
    }

    /// Worst-case delay (horizontal deviation); `None` if unstable.
    pub fn delay_bound(&self, alpha: &AffineCurve) -> Option<f64> {
        if alpha.rho > self.rate {
            return None;
        }
        Some(self.latency + alpha.sigma / self.rate)
    }

    /// Concatenation of two latency-rate servers traversed in sequence:
    /// `(min(R1,R2), T1+T2)` (min-plus convolution of the curves).
    pub fn then(&self, next: &LatencyRate) -> LatencyRate {
        LatencyRate::new(self.rate.min(next.rate), self.latency + next.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_shape() {
        let b = LatencyRate::new(2.0, 1.5);
        assert_eq!(b.eval(1.0), 0.0);
        assert_eq!(b.eval(1.5), 0.0);
        assert_eq!(b.eval(2.5), 2.0);
    }

    #[test]
    fn gps_zero_latency_bounds() {
        let beta = LatencyRate::guaranteed_rate(0.25);
        let alpha = AffineCurve::new(3.0, 0.2);
        assert_eq!(beta.backlog_bound(&alpha), Some(3.0)); // σ
        assert_eq!(beta.delay_bound(&alpha), Some(12.0)); // σ/g
    }

    #[test]
    fn latency_inflates_bounds() {
        let beta = LatencyRate::new(0.5, 4.0);
        let alpha = AffineCurve::new(1.0, 0.25);
        assert_eq!(beta.backlog_bound(&alpha), Some(2.0)); // σ + ρT
        assert_eq!(beta.delay_bound(&alpha), Some(6.0)); // T + σ/R
    }

    #[test]
    fn unstable_is_none() {
        let beta = LatencyRate::new(0.2, 0.0);
        let alpha = AffineCurve::new(1.0, 0.3);
        assert!(beta.backlog_bound(&alpha).is_none());
        assert!(beta.delay_bound(&alpha).is_none());
    }

    #[test]
    fn concatenation() {
        let a = LatencyRate::new(1.0, 1.0);
        let b = LatencyRate::new(0.5, 2.0);
        let c = a.then(&b);
        assert_eq!(c.rate, 0.5);
        assert_eq!(c.latency, 3.0);
    }

    #[test]
    fn bounds_dominate_any_sample_path() {
        // A greedy source against a slotted rate-R server: simulated
        // backlog never exceeds the bound.
        let alpha = AffineCurve::new(2.0, 0.4);
        let beta = LatencyRate::guaranteed_rate(0.5);
        // Greedy: burst σ at t=0 then rate ρ.
        let mut q: f64 = 0.0;
        let mut worst: f64 = 0.0;
        for t in 0..200 {
            let a = if t == 0 { 2.0 + 0.4 } else { 0.4 };
            q = (q + a - 0.5).max(0.0);
            worst = worst.max(q);
        }
        assert!(worst <= beta.backlog_bound(&alpha).unwrap() + 1e-9);
    }
}
