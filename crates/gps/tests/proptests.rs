//! Property-based tests for GPS structural invariants: water-filling,
//! feasible orderings, and the feasible partition. Runs on the in-tree
//! harness in `gps_stats::prop`.

use gps_core::{
    find_feasible_ordering, is_feasible_ordering, water_fill, water_fill_batch_into,
    water_fill_into, FeasiblePartition, GpsAssignment, RateAllocation,
};
use gps_stats::prop::{vec_of, Strategy};
use gps_stats::{prop_assert, prop_assert_eq, proptest};

/// Strategy: 2..8 positive weights.
fn phis() -> impl Strategy<Value = Vec<f64>> {
    vec_of(0.05f64..10.0, 2..8)
}

/// Deterministic per-(seed, row, session) demand in the same mixed
/// finite/zero/infinite family the simulators feed the kernel.
fn demand_at(seed: u64, row: usize, i: usize) -> f64 {
    let h = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add((row * 131 + i * 7 + 1) as u64)
        % 12;
    match h {
        0 => f64::INFINITY, // always backlogged
        1 => 0.0,           // idle session
        h => h as f64 * 0.37,
    }
}

/// Bit-exact equality (== would conflate -0.0/0.0 and reject NaN).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

proptest! {
    fn water_fill_feasible_and_work_conserving(
        ph in phis(),
        cap in 0.1f64..3.0,
        seed in 0u64..500,
    ) {
        let n = ph.len();
        // Deterministic demands from the seed (mix finite/infinite).
        let dem: Vec<f64> = (0..n)
            .map(|i| {
                let h = seed.wrapping_mul(31).wrapping_add(i as u64 * 7) % 10;
                if h == 0 { f64::INFINITY } else { h as f64 * 0.3 }
            })
            .collect();
        let alloc = water_fill(&dem, &ph, cap);
        let total: f64 = alloc.iter().sum();
        let total_demand: f64 = dem.iter().cloned().fold(0.0, |a, d| {
            if d.is_infinite() { f64::INFINITY } else { a + d }
        });
        // Feasibility.
        for (a, d) in alloc.iter().zip(&dem) {
            prop_assert!(*a >= -1e-12);
            prop_assert!(*a <= d + 1e-9);
        }
        // Work conservation.
        let want = cap.min(total_demand);
        prop_assert!((total - want).abs() < 1e-6, "served {total} want {want}");
        // GPS ratio property for unsatisfied sessions.
        for i in 0..n {
            let unmet_i = dem[i] - alloc[i] > 1e-9;
            if unmet_i {
                for j in 0..n {
                    if alloc[j] > 1e-12 {
                        prop_assert!(
                            alloc[i] / alloc[j] >= ph[i] / ph[j] - 1e-6,
                            "ratio violated ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    fn greedy_ordering_always_feasible(ph in phis(), load in 0.1f64..0.999) {
        let n = ph.len();
        let a = GpsAssignment::unit_rate(ph);
        // Rates proportional to a scrambled pattern, scaled to `load`.
        let raw: Vec<f64> = (0..n).map(|i| 0.2 + ((i * 2654435761) % 83) as f64 / 83.0).collect();
        let s: f64 = raw.iter().sum();
        let rs: Vec<f64> = raw.iter().map(|r| r / s * load).collect();
        let perm = find_feasible_ordering(&rs, &a).expect("sum <= 1");
        prop_assert!(is_feasible_ordering(&perm, &rs, &a));
    }

    fn partition_invariants(ph in phis(), load in 0.1f64..0.95, seed in 0u64..300) {
        let n = ph.len();
        let a = GpsAssignment::unit_rate(ph.clone());
        let raw: Vec<f64> = (0..n)
            .map(|i| 0.1 + (seed.wrapping_add(i as u64 * 13) % 37) as f64 / 37.0)
            .collect();
        let s: f64 = raw.iter().sum();
        let rhos: Vec<f64> = raw.iter().map(|r| r / s * load).collect();
        let p = FeasiblePartition::compute(&rhos, &a).expect("stable");
        // Every session in exactly one class.
        let mut seen = vec![false; n];
        for k in 0..p.num_classes() {
            for &i in p.class(k) {
                prop_assert!(!seen[i]);
                seen[i] = true;
                prop_assert_eq!(p.class_of(i), k);
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
        // Chain condition (paper Eq. 40).
        prop_assert!(p.verify_chain(&rhos, &a));
        // H1 membership criterion.
        for (i, &rho) in rhos.iter().enumerate() {
            let in_h1 = p.class_of(i) == 0;
            prop_assert_eq!(in_h1, rho < a.guaranteed_rate(i));
        }
        // Lemma 9 with uniform aggregate slack.
        let slack = 1.0 - rhos.iter().sum::<f64>();
        let eps = vec![slack / p.num_classes() as f64 * 0.99; p.num_classes()];
        prop_assert!(p.lemma9_holds(&rhos, &eps, &a));
    }

    fn batch_water_fill_matches_repeated_single_rows_bit_for_bit(
        ph in phis(),
        rows in 1usize..7,
        cap in 0.0f64..3.0,
        seed in 0u64..1000,
    ) {
        let n = ph.len();
        let flat: Vec<f64> = (0..rows)
            .flat_map(|r| (0..n).map(move |i| demand_at(seed, r, i)))
            .collect();

        let mut batch_alloc = Vec::new();
        let mut batch_active = Vec::new();
        water_fill_batch_into(&flat, &ph, cap, &mut batch_alloc, &mut batch_active);
        prop_assert_eq!(batch_alloc.len(), rows * n);

        let mut row_alloc = Vec::new();
        let mut row_active = Vec::new();
        for r in 0..rows {
            water_fill_into(&flat[r * n..(r + 1) * n], &ph, cap, &mut row_alloc, &mut row_active);
            for i in 0..n {
                prop_assert!(
                    bits_eq(batch_alloc[r * n + i], row_alloc[i]),
                    "row {r} session {i}: batch {} != single {}",
                    batch_alloc[r * n + i],
                    row_alloc[i]
                );
            }
        }
    }

    fn batch_water_fill_all_backlogged_is_weight_proportional_per_row(
        ph in phis(),
        rows in 1usize..5,
        cap in 0.1f64..2.0,
    ) {
        let n = ph.len();
        // Every session in every row permanently backlogged.
        let flat = vec![f64::INFINITY; rows * n];
        let mut alloc = Vec::new();
        let mut active = Vec::new();
        water_fill_batch_into(&flat, &ph, cap, &mut alloc, &mut active);
        let single = water_fill(&vec![f64::INFINITY; n], &ph, cap);
        for r in 0..rows {
            for i in 0..n {
                prop_assert!(
                    bits_eq(alloc[r * n + i], single[i]),
                    "row {r} diverges from the single-row kernel"
                );
            }
        }
        // And the classic φ-proportional split holds in each row.
        let phi_sum: f64 = ph.iter().sum();
        for r in 0..rows {
            for i in 0..n {
                let want = cap * ph[i] / phi_sum;
                prop_assert!((alloc[r * n + i] - want).abs() < 1e-9 * cap.max(1.0));
            }
        }
    }

    fn batch_water_fill_single_session_rows(
        rows in 1usize..6,
        w in 0.05f64..10.0,
        cap in 0.0f64..2.0,
        seed in 0u64..200,
    ) {
        // n = 1: each row's lone session gets min(demand, capacity).
        let flat: Vec<f64> = (0..rows).map(|r| demand_at(seed, r, 0)).collect();
        let mut alloc = Vec::new();
        let mut active = Vec::new();
        water_fill_batch_into(&flat, &[w], cap, &mut alloc, &mut active);
        let mut row_alloc = Vec::new();
        let mut row_active = Vec::new();
        for r in 0..rows {
            water_fill_into(&flat[r..=r], &[w], cap, &mut row_alloc, &mut row_active);
            prop_assert!(bits_eq(alloc[r], row_alloc[0]), "row {r}");
            prop_assert!(alloc[r] <= flat[r].min(cap) + 1e-12);
        }
    }

    fn rate_allocations_stay_feasible(
        ph in phis(),
        load in 0.1f64..0.95,
        frac in 0.1f64..1.0,
    ) {
        let n = ph.len();
        let rhos: Vec<f64> = (0..n).map(|i| load / n as f64 * (0.5 + (i % 3) as f64 / 3.0)).collect();
        for strat in [
            RateAllocation::Uniform,
            RateAllocation::Proportional,
            RateAllocation::WeightProportional,
        ] {
            if let Some(rs) = strat.dedicated_rates(&rhos, &ph, 1.0, frac) {
                // Every rate above its rho; total within capacity.
                for (r, rho) in rs.iter().zip(&rhos) {
                    prop_assert!(r > rho);
                }
                prop_assert!(rs.iter().sum::<f64>() <= 1.0 + 1e-9);
                // And a feasible ordering exists.
                let a = GpsAssignment::unit_rate(ph.clone());
                prop_assert!(find_feasible_ordering(&rs, &a).is_some());
            }
        }
    }
}

// Deterministic edge cases for the batched kernel that the strategies
// above cannot hit (degenerate shapes and rejected inputs).

#[test]
fn batch_water_fill_zero_rows_is_empty() {
    let mut alloc = vec![9.9; 3];
    let mut active = Vec::new();
    water_fill_batch_into(&[], &[1.0, 2.0], 1.0, &mut alloc, &mut active);
    assert!(alloc.is_empty(), "no rows → no allocations");
}

#[test]
fn batch_water_fill_zero_demand_rows_get_nothing() {
    let mut alloc = Vec::new();
    let mut active = Vec::new();
    water_fill_batch_into(
        &[0.0, 0.0, 0.0, 5.0],
        &[1.0, 3.0],
        1.0,
        &mut alloc,
        &mut active,
    );
    assert_eq!(&alloc[..2], &[0.0, 0.0], "all-idle row");
    assert_eq!(alloc[2], 0.0);
    assert!(
        (alloc[3] - 1.0).abs() < 1e-12,
        "lone demander takes the capacity"
    );
}

#[test]
#[should_panic(expected = "weights must be positive")]
fn batch_water_fill_rejects_zero_weight() {
    let mut alloc = Vec::new();
    let mut active = Vec::new();
    water_fill_batch_into(&[1.0, 1.0], &[1.0, 0.0], 1.0, &mut alloc, &mut active);
}

#[test]
#[should_panic(expected = "whole rows")]
fn batch_water_fill_rejects_ragged_buffer() {
    let mut alloc = Vec::new();
    let mut active = Vec::new();
    water_fill_batch_into(&[1.0, 1.0, 1.0], &[1.0, 1.0], 1.0, &mut alloc, &mut active);
}
