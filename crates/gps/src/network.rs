//! Network topology descriptions: GPS nodes, sessions, and routes.
//!
//! Section 6 of the paper considers `M` GPS nodes of rates `r^m`; session
//! `i` traverses the node sequence `P(i)` and has a per-node weight
//! `φ_i^m`. This module is the plain data model shared by the analytical
//! network machinery (`gps-analysis`) and the simulator (`gps-sim`):
//! routes, per-node session sets `I(m)`, per-node assignments, and the
//! paper's Figure-2 example network as a ready-made constructor.

use crate::assignment::GpsAssignment;

/// Index of a node in a [`NetworkTopology`].
pub type NodeId = usize;

/// Index of a session in a [`NetworkTopology`].
pub type SessionId = usize;

/// A session's static description: its route and per-node GPS weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Nodes traversed, in order (`P(i)` in the paper). Must be nonempty
    /// and loop-free.
    pub route: Vec<NodeId>,
    /// GPS weight at each node of the route (`φ_i^{P(i,k)}`), same length
    /// as `route`.
    pub phis: Vec<f64>,
}

impl SessionSpec {
    /// Creates a session with a uniform weight at every node of its route.
    pub fn with_uniform_phi(route: Vec<NodeId>, phi: f64) -> Self {
        let phis = vec![phi; route.len()];
        Self { route, phis }
    }

    /// Position of `node` in the route, if the session visits it.
    pub fn position_of(&self, node: NodeId) -> Option<usize> {
        self.route.iter().position(|&n| n == node)
    }

    /// The weight this session uses at `node`.
    pub fn phi_at(&self, node: NodeId) -> Option<f64> {
        self.position_of(node).map(|k| self.phis[k])
    }
}

/// A network of GPS servers with fixed sessions and routes.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkTopology {
    node_rates: Vec<f64>,
    sessions: Vec<SessionSpec>,
}

impl NetworkTopology {
    /// Creates a topology from node service rates and session specs.
    ///
    /// # Panics
    ///
    /// Panics if any rate is non-positive, a route is empty or references a
    /// missing node, a route revisits a node, or weight vectors mismatch
    /// their routes.
    pub fn new(node_rates: Vec<f64>, sessions: Vec<SessionSpec>) -> Self {
        assert!(!node_rates.is_empty(), "need at least one node");
        assert!(
            node_rates.iter().all(|&r| r.is_finite() && r > 0.0),
            "node rates must be positive"
        );
        for (i, s) in sessions.iter().enumerate() {
            assert!(!s.route.is_empty(), "session {i} has an empty route");
            assert_eq!(
                s.route.len(),
                s.phis.len(),
                "session {i}: one phi per route node"
            );
            assert!(
                s.phis.iter().all(|&p| p.is_finite() && p > 0.0),
                "session {i}: weights must be positive"
            );
            let mut seen = vec![false; node_rates.len()];
            for &n in &s.route {
                assert!(n < node_rates.len(), "session {i} visits missing node {n}");
                assert!(!seen[n], "session {i} revisits node {n}");
                seen[n] = true;
            }
        }
        Self {
            node_rates,
            sessions,
        }
    }

    /// Number of nodes `M`.
    pub fn num_nodes(&self) -> usize {
        self.node_rates.len()
    }

    /// Number of sessions `N`.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Service rate `r^m`.
    pub fn node_rate(&self, m: NodeId) -> f64 {
        self.node_rates[m]
    }

    /// Session spec.
    pub fn session(&self, i: SessionId) -> &SessionSpec {
        &self.sessions[i]
    }

    /// All sessions.
    pub fn sessions(&self) -> &[SessionSpec] {
        &self.sessions
    }

    /// The set `I(m)`: sessions visiting node `m`, ascending.
    pub fn sessions_at(&self, m: NodeId) -> Vec<SessionId> {
        (0..self.sessions.len())
            .filter(|&i| self.sessions[i].position_of(m).is_some())
            .collect()
    }

    /// The GPS assignment at node `m` over `I(m)` (in the order returned by
    /// [`Self::sessions_at`]). Returns the assignment together with that
    /// session ordering. `None` if no session visits `m`.
    pub fn assignment_at(&self, m: NodeId) -> Option<(GpsAssignment, Vec<SessionId>)> {
        let ids = self.sessions_at(m);
        if ids.is_empty() {
            return None;
        }
        let phis: Vec<f64> = ids
            .iter()
            .map(|&i| self.sessions[i].phi_at(m).expect("session visits node"))
            .collect();
        Some((GpsAssignment::new(phis, self.node_rates[m]), ids))
    }

    /// Per-node utilization `Σ_{i ∈ I(m)} ρ_i / r^m` for the given session
    /// rates; the network satisfies the paper's stability hypothesis when
    /// every entry is `< 1`.
    pub fn utilizations(&self, rhos: &[f64]) -> Vec<f64> {
        assert_eq!(rhos.len(), self.num_sessions());
        (0..self.num_nodes())
            .map(|m| {
                let load: f64 = self.sessions_at(m).iter().map(|&i| rhos[i]).sum();
                load / self.node_rates[m]
            })
            .collect()
    }

    /// True when `Σ_{i∈I(m)} ρ_i < r^m` at every node.
    pub fn is_stable_for(&self, rhos: &[f64]) -> bool {
        self.utilizations(rhos).iter().all(|&u| u < 1.0)
    }

    /// The paper's Figure-2 example: three unit-rate nodes in a tree;
    /// sessions 1,2 enter at node 0, sessions 3,4 at node 1, and all four
    /// congregate at node 2. Weights are per-session constants (RPPS passes
    /// `φ_i = ρ_i`).
    pub fn paper_figure2(phis: [f64; 4]) -> Self {
        let mk = |route: Vec<NodeId>, phi: f64| SessionSpec::with_uniform_phi(route, phi);
        NetworkTopology::new(
            vec![1.0, 1.0, 1.0],
            vec![
                mk(vec![0, 2], phis[0]),
                mk(vec![0, 2], phis[1]),
                mk(vec![1, 2], phis[2]),
                mk(vec![1, 2], phis[3]),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_structure() {
        let net = NetworkTopology::paper_figure2([0.2, 0.25, 0.2, 0.25]);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_sessions(), 4);
        assert_eq!(net.sessions_at(0), vec![0, 1]);
        assert_eq!(net.sessions_at(1), vec![2, 3]);
        assert_eq!(net.sessions_at(2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn figure2_rpps_guaranteed_rates() {
        let rhos = [0.2, 0.25, 0.2, 0.25];
        let net = NetworkTopology::paper_figure2(rhos);
        let (a2, ids) = net.assignment_at(2).unwrap();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Bottleneck rates: g1 = 0.2/0.9 at node 2.
        assert!((a2.guaranteed_rate(0) - 0.2 / 0.9).abs() < 1e-12);
        let (a0, ids0) = net.assignment_at(0).unwrap();
        assert_eq!(ids0, vec![0, 1]);
        // At node 0 only two sessions: g1 = 0.2/0.45 — larger.
        assert!((a0.guaranteed_rate(0) - 0.2 / 0.45).abs() < 1e-12);
    }

    #[test]
    fn utilizations_and_stability() {
        let rhos = [0.2, 0.25, 0.2, 0.25];
        let net = NetworkTopology::paper_figure2(rhos);
        let u = net.utilizations(&rhos);
        assert!((u[0] - 0.45).abs() < 1e-12);
        assert!((u[1] - 0.45).abs() < 1e-12);
        assert!((u[2] - 0.9).abs() < 1e-12);
        assert!(net.is_stable_for(&rhos));
        assert!(!net.is_stable_for(&[0.3, 0.3, 0.2, 0.25]));
    }

    #[test]
    fn session_spec_queries() {
        let s = SessionSpec::with_uniform_phi(vec![2, 0, 1], 0.5);
        assert_eq!(s.position_of(0), Some(1));
        assert_eq!(s.position_of(3), None);
        assert_eq!(s.phi_at(1), Some(0.5));
        assert_eq!(s.phi_at(9), None);
    }

    #[test]
    #[should_panic(expected = "revisits node")]
    fn rejects_looping_route() {
        let _ = NetworkTopology::new(
            vec![1.0, 1.0],
            vec![SessionSpec::with_uniform_phi(vec![0, 1, 0], 1.0)],
        );
    }

    #[test]
    #[should_panic(expected = "visits missing node")]
    fn rejects_missing_node() {
        let _ = NetworkTopology::new(
            vec![1.0],
            vec![SessionSpec::with_uniform_phi(vec![0, 1], 1.0)],
        );
    }

    #[test]
    fn assignment_at_empty_node() {
        let net = NetworkTopology::new(
            vec![1.0, 1.0],
            vec![SessionSpec::with_uniform_phi(vec![0], 1.0)],
        );
        assert!(net.assignment_at(1).is_none());
    }
}
