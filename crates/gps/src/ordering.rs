//! Feasible orderings (paper Eqs. 4–5).
//!
//! Given dedicated rates `{r_i}` with `Σ r_i <= r`, a permutation
//! `π(1), …, π(N)` is a **feasible ordering** when every session's rate
//! fits within its weighted share of the capacity left over by its
//! predecessors:
//!
//! ```text
//! r_{π(k)} <= [φ_{π(k)} / Σ_{l>=k} φ_{π(l)}] · (r - Σ_{l<k} r_{π(l)})
//! ```
//!
//! Parekh & Gallager showed such an ordering always exists when
//! `Σ r_i <= r`; the constructive argument (used by
//! [`find_feasible_ordering`]) is a greedy exchange: among the not-yet-
//! placed sessions, the one minimizing `r_i/φ_i` always satisfies the
//! constraint, because if *every* remaining session violated it, summing
//! the violations would contradict `Σ_{remaining} r_i <= remaining
//! capacity`.

use crate::assignment::GpsAssignment;

/// Verifies that `perm` is a feasible ordering of the sessions with
/// dedicated rates `rs` under `assignment` (tolerance `1e-12` on the
/// inequalities).
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..N` or lengths mismatch.
pub fn is_feasible_ordering(perm: &[usize], rs: &[f64], assignment: &GpsAssignment) -> bool {
    let n = assignment.len();
    assert_eq!(rs.len(), n);
    assert_eq!(perm.len(), n);
    let mut seen = vec![false; n];
    for &i in perm {
        assert!(i < n && !seen[i], "perm must be a permutation of 0..N");
        seen[i] = true;
    }

    let mut used = 0.0;
    let mut tail_phi: f64 = perm.iter().map(|&i| assignment.phi(i)).sum();
    for &i in perm {
        let share = assignment.phi(i) / tail_phi;
        let budget = share * (assignment.rate() - used);
        if rs[i] > budget + 1e-12 {
            return false;
        }
        used += rs[i];
        tail_phi -= assignment.phi(i);
    }
    true
}

/// Constructs a feasible ordering for dedicated rates `rs` (requires
/// `Σ r_i <= r`, within `1e-12`); returns the permutation, or `None` if the
/// rates overcommit the server.
///
/// The construction greedily places the remaining session with the smallest
/// `r_i/φ_i`; ties are broken by index, making the result deterministic.
pub fn find_feasible_ordering(rs: &[f64], assignment: &GpsAssignment) -> Option<Vec<usize>> {
    let n = assignment.len();
    assert_eq!(rs.len(), n);
    assert!(rs.iter().all(|&r| r >= 0.0), "rates must be nonnegative");
    if rs.iter().sum::<f64>() > assignment.rate() + 1e-12 {
        return None;
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    // Sort once by r_i/φ_i: the greedy invariant (smallest ratio first)
    // is preserved because removing sessions only loosens the constraint
    // for the rest.
    remaining.sort_by(|&a, &b| {
        let ra = rs[a] / assignment.phi(a);
        let rb = rs[b] / assignment.phi(b);
        ra.partial_cmp(&rb).expect("finite ratios").then(a.cmp(&b))
    });
    debug_assert!(is_feasible_ordering(&remaining, rs, assignment));
    Some(remaining)
}

/// Enumerates *all* feasible orderings (for tests, ablations, and small
/// N only — this is `O(N!)`).
///
/// # Panics
///
/// Panics for `N > 9` to protect callers from factorial blowup.
pub fn enumerate_feasible_orderings(rs: &[f64], assignment: &GpsAssignment) -> Vec<Vec<usize>> {
    let n = assignment.len();
    assert!(n <= 9, "enumeration is factorial; N={n} is too large");
    let mut out = Vec::new();
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |p| {
        if is_feasible_ordering(p, rs, assignment) {
            out.push(p.to_vec());
        }
    });
    out
}

fn permute(arr: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == arr.len() {
        visit(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, visit);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_ordering_is_feasible() {
        let a = GpsAssignment::unit_rate(vec![1.0, 2.0, 1.0, 4.0]);
        let rs = [0.3, 0.2, 0.25, 0.2];
        let perm = find_feasible_ordering(&rs, &a).unwrap();
        assert!(is_feasible_ordering(&perm, &rs, &a));
    }

    #[test]
    fn overcommitted_rates_rejected() {
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0]);
        assert!(find_feasible_ordering(&[0.6, 0.6], &a).is_none());
    }

    #[test]
    fn exact_fill_is_accepted() {
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0]);
        let perm = find_feasible_ordering(&[0.5, 0.5], &a).unwrap();
        assert!(is_feasible_ordering(&perm, &rs_copy(&[0.5, 0.5]), &a));
    }

    fn rs_copy(rs: &[f64]) -> Vec<f64> {
        rs.to_vec()
    }

    #[test]
    fn ordering_not_unique_but_checker_discriminates() {
        // Highly asymmetric: big-rate/low-weight session must come last.
        let a = GpsAssignment::unit_rate(vec![10.0, 1.0]);
        let rs = [0.05, 0.9];
        // Session 1 (r=0.9, φ=1) first: budget = (1/11)*1 = 0.09 < 0.9 ✗.
        assert!(!is_feasible_ordering(&[1, 0], &rs, &a));
        // Session 0 first: budget = (10/11) > 0.05 ✓; then 1 gets all
        // remaining 0.95 >= 0.9 ✓.
        assert!(is_feasible_ordering(&[0, 1], &rs, &a));
        assert_eq!(find_feasible_ordering(&rs, &a).unwrap(), vec![0, 1]);
    }

    #[test]
    fn enumeration_matches_checker() {
        let a = GpsAssignment::unit_rate(vec![1.0, 2.0, 3.0]);
        let rs = [0.2, 0.3, 0.4];
        let all = enumerate_feasible_orderings(&rs, &a);
        assert!(!all.is_empty());
        for p in &all {
            assert!(is_feasible_ordering(p, &rs, &a));
        }
        // The greedy one is among them.
        let greedy = find_feasible_ordering(&rs, &a).unwrap();
        assert!(all.contains(&greedy));
        // And there are non-feasible permutations (sanity that the
        // constraint bites): total permutations 6.
        assert!(all.len() < 6, "expected some infeasible orderings");
    }

    #[test]
    fn equal_everything_all_orderings_feasible() {
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0, 1.0]);
        let rs = [0.2, 0.2, 0.2];
        let all = enumerate_feasible_orderings(&rs, &a);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn paper_eq5_structure() {
        // Verify the budget recursion against a hand computation.
        // φ = (1,1), r = (0.4, 0.5), server 1.
        // Order (0,1): session 0 budget = 0.5 >= 0.4 ✓; session 1 budget =
        // 1·(1-0.4) = 0.6 >= 0.5 ✓.
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0]);
        assert!(is_feasible_ordering(&[0, 1], &[0.4, 0.5], &a));
        // Order (1,0): session 1 budget = 0.5 >= 0.5 ✓ (boundary);
        // session 0 budget = 0.5 >= 0.4 ✓.
        assert!(is_feasible_ordering(&[1, 0], &[0.4, 0.5], &a));
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn checker_rejects_bad_perm() {
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0]);
        let _ = is_feasible_ordering(&[0, 0], &[0.1, 0.1], &a);
    }
}
