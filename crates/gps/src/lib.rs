//! GPS (Generalized Processor Sharing) fundamentals.
//!
//! A GPS server of rate `r` serves `N` sessions according to positive
//! weights `{φ_i}` (the *GPS assignment*): whenever session `i` is
//! backlogged over `[τ, t]`,
//!
//! ```text
//! S_i(τ,t) / S_j(τ,t) >= φ_i / φ_j      for all j          (paper Eq. 1)
//! ```
//!
//! which guarantees session `i` a backlog-clearing rate
//! `g_i = φ_i r / Σ_j φ_j`. This crate holds everything about the
//! *structure* of GPS that the statistical analysis builds on:
//!
//! * [`assignment::GpsAssignment`] — weights, guaranteed rates, the RPPS
//!   (`φ_i = ρ_i`) special case;
//! * [`ordering`] — *feasible orderings* (paper Eqs. 4–5): permutations
//!   along which each session's dedicated rate fits in the capacity left by
//!   its predecessors; construction, verification, enumeration;
//! * [`partition`] — the *feasible partition* `H_1, …, H_L` (paper
//!   Eqs. 37–39), the intrinsic priority structure determined by the ratios
//!   `ρ_i/φ_i`; plus the induced aggregate system of Section 5 (Lemma 9);
//! * [`decomposition`] — strategies for choosing the fictitious dedicated
//!   rates `r_i = ρ_i + ε_i` of the paper's Figure-1 decomposition;
//! * [`fluid`] — exact fluid GPS service allocation (water-filling), the
//!   primitive both simulators are built on.

pub mod assignment;
pub mod decomposition;
pub mod fluid;
pub mod network;
pub mod ordering;
pub mod partition;

pub use assignment::GpsAssignment;
pub use decomposition::RateAllocation;
pub use fluid::{water_fill, water_fill_batch_into, water_fill_into, water_fill_unchecked};
pub use network::{NetworkTopology, NodeId, SessionId, SessionSpec};
pub use ordering::{find_feasible_ordering, is_feasible_ordering};
pub use partition::FeasiblePartition;
