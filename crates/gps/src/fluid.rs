//! Exact fluid GPS service allocation (water-filling).
//!
//! Over an interval in which session demands are fixed, fluid GPS serves
//! each session at a rate proportional to its weight among sessions that
//! still have demand; sessions whose demand is met by less than their fair
//! share release the surplus, which is redistributed — the classic
//! water-filling fixpoint. One invocation covers both simulators:
//!
//! * the slotted simulator calls it with *amounts* (backlog + arrivals
//!   this slot) and the per-slot capacity;
//! * the event-driven simulator calls it with *rates* (input rates of
//!   non-backlogged sessions, `+∞`-like demand for backlogged ones) and
//!   the server rate.
//!
//! The result satisfies the GPS defining property (paper Eq. 1): among
//! sessions whose demand is not fully met, service is exactly
//! `φ`-proportional.

/// Allocates `capacity` among sessions with the given `demands` and
/// weights `phis`, by water-filling. Returns per-session allocations.
///
/// Properties (all asserted by tests):
/// * `0 <= alloc_i <= demand_i`;
/// * `Σ alloc_i = min(capacity, Σ demand_i)` (work conservation);
/// * sessions with unmet demand receive `φ`-proportional shares.
///
/// Use `f64::INFINITY` as a demand for "always backlogged".
///
/// # Examples
///
/// ```
/// use gps_core::water_fill;
/// // Session 0 is satisfied by less than its fair share; the surplus
/// // goes to the backlogged session 1.
/// let alloc = water_fill(&[0.1, f64::INFINITY], &[1.0, 1.0], 1.0);
/// assert!((alloc[0] - 0.1).abs() < 1e-12);
/// assert!((alloc[1] - 0.9).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics on mismatched lengths, negative demands, non-positive weights or
/// negative capacity.
pub fn water_fill(demands: &[f64], phis: &[f64], capacity: f64) -> Vec<f64> {
    let mut alloc = Vec::new();
    let mut active = Vec::new();
    water_fill_into(demands, phis, capacity, &mut alloc, &mut active);
    alloc
}

/// Allocation-free [`water_fill`]: writes the per-session allocations into
/// `alloc` (cleared and resized to `demands.len()`) and uses `active` as
/// scratch for the active-session set. Simulator hot loops call this once
/// per slot with long-lived buffers so steady state allocates nothing.
pub fn water_fill_into(
    demands: &[f64],
    phis: &[f64],
    capacity: f64,
    alloc: &mut Vec<f64>,
    active: &mut Vec<usize>,
) {
    assert_eq!(demands.len(), phis.len());
    assert!(capacity >= 0.0, "capacity must be nonnegative");
    assert!(
        demands.iter().all(|&d| d >= 0.0),
        "demands must be nonnegative"
    );
    assert!(phis.iter().all(|&p| p > 0.0), "weights must be positive");

    let n = demands.len();
    alloc.clear();
    alloc.resize(n, 0.0);
    water_fill_unchecked(demands, phis, capacity, alloc, active);
}

/// The validated-input water-filling core: fills `alloc` (which must have
/// `demands.len()` elements; prior contents are overwritten) without
/// re-checking the input invariants. Bit-identical to [`water_fill_into`]
/// on the same row — the simulators' per-slot loops call this directly
/// because their inputs are validated once at construction/arrival time,
/// and [`water_fill_batch_into`] calls it per row after validating the
/// whole batch once.
///
/// Invariants the caller must guarantee (debug-asserted only):
/// `alloc.len() == demands.len() == phis.len()`, `capacity >= 0`,
/// `demands[i] >= 0`, `phis[i] > 0`.
pub fn water_fill_unchecked(
    demands: &[f64],
    phis: &[f64],
    capacity: f64,
    alloc: &mut [f64],
    active: &mut Vec<usize>,
) {
    debug_assert_eq!(demands.len(), phis.len());
    debug_assert_eq!(alloc.len(), demands.len());
    debug_assert!(capacity >= 0.0);
    debug_assert!(demands.iter().all(|&d| d >= 0.0));
    debug_assert!(phis.iter().all(|&p| p > 0.0));

    let n = demands.len();
    alloc.fill(0.0);
    active.clear();
    active.extend((0..n).filter(|&i| demands[i] > 0.0));
    let mut remaining = capacity;

    // Each pass either satisfies at least one session completely (and
    // removes it) or exhausts the capacity proportionally: at most n
    // passes.
    while !active.is_empty() && remaining > 0.0 {
        let phi_sum: f64 = active.iter().map(|&i| phis[i]).sum();
        // Largest uniform "fill level" (service per unit weight) that no
        // active session's remaining demand blocks.
        let mut level = remaining / phi_sum;
        let mut binding: Option<usize> = None;
        for &i in active.iter() {
            let need = (demands[i] - alloc[i]) / phis[i];
            if need < level {
                level = need;
                binding = Some(i);
            }
        }
        for &i in active.iter() {
            alloc[i] += level * phis[i];
        }
        remaining -= level * phi_sum;
        match binding {
            Some(_) => {
                // Remove every session that is now (numerically) satisfied
                // (infinite demands are never satisfied).
                active.retain(|&i| {
                    demands[i].is_infinite() || demands[i] - alloc[i] > 1e-15 * demands[i].max(1.0)
                });
            }
            None => break, // capacity exhausted exactly proportionally
        }
        if remaining <= 1e-18 {
            break;
        }
    }
}

/// Batched water-filling: allocates `capacity` independently for each of
/// the `demands.len() / phis.len()` rows of the flat slot-major `demands`
/// buffer (row `r` = `demands[r*n..(r+1)*n]`), writing the allocations
/// into the matching rows of `alloc` (cleared and resized to
/// `demands.len()`).
///
/// Row `r`'s output is bit-identical to
/// `water_fill_into(&demands[r*n..(r+1)*n], phis, capacity, ..)` — the
/// rows share the exact same arithmetic core — but the input validation
/// (finite nonnegative demands, positive weights, nonnegative capacity)
/// is hoisted out of the row loop and done once for the whole batch, so
/// the per-row cost is branch-light. Campaign loops that precompute many
/// slots' demands (or many replications' identical-shape demand rows)
/// amortize validation and dispatch across the whole batch.
///
/// # Panics
///
/// Panics if `phis` is empty, `demands.len()` is not a multiple of
/// `phis.len()`, or any input violates the [`water_fill_into`]
/// invariants.
pub fn water_fill_batch_into(
    demands: &[f64],
    phis: &[f64],
    capacity: f64,
    alloc: &mut Vec<f64>,
    active: &mut Vec<usize>,
) {
    let n = phis.len();
    assert!(n > 0, "need at least one session");
    assert_eq!(
        demands.len() % n,
        0,
        "flat demand buffer must hold whole rows of {n} sessions"
    );
    assert!(capacity >= 0.0, "capacity must be nonnegative");
    assert!(
        demands.iter().all(|&d| d >= 0.0),
        "demands must be nonnegative"
    );
    assert!(phis.iter().all(|&p| p > 0.0), "weights must be positive");

    alloc.clear();
    alloc.resize(demands.len(), 0.0);
    for (demand_row, alloc_row) in demands.chunks_exact(n).zip(alloc.chunks_exact_mut(n)) {
        water_fill_unchecked(demand_row, phis, capacity, alloc_row, active);
    }
}

/// Instantaneous fluid GPS *rate* allocation: backlogged sessions have
/// unbounded demand; non-backlogged sessions demand exactly their current
/// input rate. Returns per-session service rates.
pub fn gps_rates(
    backlogged: &[bool],
    input_rates: &[f64],
    phis: &[f64],
    capacity: f64,
) -> Vec<f64> {
    assert_eq!(backlogged.len(), input_rates.len());
    let demands: Vec<f64> = backlogged
        .iter()
        .zip(input_rates)
        .map(|(&b, &r)| if b { f64::INFINITY } else { r })
        .collect();
    water_fill(&demands, phis, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn all_backlogged_proportional() {
        let a = water_fill(&[f64::INFINITY, f64::INFINITY], &[1.0, 3.0], 1.0);
        assert!((a[0] - 0.25).abs() < 1e-12);
        assert!((a[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn surplus_redistributed() {
        // Session 0 needs only 0.1 < its 0.5 fair share; surplus to 1.
        let a = water_fill(&[0.1, f64::INFINITY], &[1.0, 1.0], 1.0);
        assert!((a[0] - 0.1).abs() < 1e-12);
        assert!((a[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn work_conserving() {
        let demands = [0.2, 0.3, 0.1];
        let a = water_fill(&demands, &[1.0, 1.0, 1.0], 1.0);
        // Total demand 0.6 < capacity: everyone fully served.
        assert!((total(&a) - 0.6).abs() < 1e-12);
        for (x, d) in a.iter().zip(&demands) {
            assert!((x - d).abs() < 1e-12);
        }
    }

    #[test]
    fn capacity_binding_proportional_among_unmet() {
        let demands = [10.0, 10.0, 0.05];
        let phis = [2.0, 1.0, 1.0];
        let a = water_fill(&demands, &phis, 1.0);
        assert!((total(&a) - 1.0).abs() < 1e-12);
        // Session 2 fully served.
        assert!((a[2] - 0.05).abs() < 1e-12);
        // Remaining 0.95 split 2:1 between sessions 0 and 1.
        assert!((a[0] / a[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gps_defining_ratio_property() {
        // Paper Eq. 1: for backlogged i: S_i/S_j >= φ_i/φ_j for ALL j.
        let demands = [f64::INFINITY, 0.01, f64::INFINITY, 0.4];
        let phis = [1.0, 5.0, 2.5, 1.0];
        let a = water_fill(&demands, &phis, 1.0);
        for i in 0..4 {
            if demands[i].is_infinite() {
                for j in 0..4 {
                    if i != j && a[j] > 0.0 {
                        assert!(
                            a[i] / a[j] >= phis[i] / phis[j] - 1e-9,
                            "ratio violated for ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_capacity_zero_alloc() {
        let a = water_fill(&[1.0, 2.0], &[1.0, 1.0], 0.0);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_demand_sessions_ignored() {
        let a = water_fill(&[0.0, 5.0], &[10.0, 1.0], 1.0);
        assert_eq!(a[0], 0.0);
        assert!((a[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_exceeds_demand_or_capacity() {
        let demands = [0.3, 0.7, 0.2, 0.9];
        let phis = [1.0, 2.0, 0.5, 0.1];
        for cap in [0.1, 0.5, 1.0, 2.0, 3.0] {
            let a = water_fill(&demands, &phis, cap);
            for (x, d) in a.iter().zip(&demands) {
                assert!(*x <= d + 1e-12);
                assert!(*x >= 0.0);
            }
            let want = cap.min(total(&demands));
            assert!(
                (total(&a) - want).abs() < 1e-9,
                "cap {cap}: served {} want {want}",
                total(&a)
            );
        }
    }

    #[test]
    fn gps_rates_wrapper() {
        let rates = gps_rates(&[true, false], &[0.0, 0.2], &[1.0, 1.0], 1.0);
        assert!((rates[1] - 0.2).abs() < 1e-12);
        assert!((rates[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn single_session_gets_everything_it_needs() {
        let a = water_fill(&[f64::INFINITY], &[7.0], 0.9);
        assert!((a[0] - 0.9).abs() < 1e-12);
    }
}
