//! GPS assignments and guaranteed rates.

use std::fmt;

/// A GPS assignment: positive weights `{φ_i}` for `N` sessions sharing a
/// server of rate `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct GpsAssignment {
    phis: Vec<f64>,
    rate: f64,
}

impl GpsAssignment {
    /// Creates an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `phis` is empty, any weight is not finite-positive, or
    /// `rate <= 0`.
    pub fn new(phis: Vec<f64>, rate: f64) -> Self {
        assert!(!phis.is_empty(), "need at least one session");
        assert!(
            phis.iter().all(|&p| p.is_finite() && p > 0.0),
            "weights must be finite and positive"
        );
        assert!(
            rate.is_finite() && rate > 0.0,
            "server rate must be positive"
        );
        Self { phis, rate }
    }

    /// Unit-rate server convenience (the paper's `r = 1` convention).
    pub fn unit_rate(phis: Vec<f64>) -> Self {
        Self::new(phis, 1.0)
    }

    /// The **Rate Proportional Processor Sharing** assignment `φ_i = ρ_i`
    /// (Section 5 / 6.2). Under RPPS the feasible partition collapses to a
    /// single class and every session gets the simple Theorem 10/15 bounds.
    pub fn rpps(rhos: &[f64], rate: f64) -> Self {
        Self::new(rhos.to_vec(), rate)
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.phis.len()
    }

    /// True when there are no sessions (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.phis.is_empty()
    }

    /// Server rate `r`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The weights.
    pub fn phis(&self) -> &[f64] {
        &self.phis
    }

    /// Weight of session `i`.
    pub fn phi(&self, i: usize) -> f64 {
        self.phis[i]
    }

    /// Sum of all weights.
    pub fn total_phi(&self) -> f64 {
        self.phis.iter().sum()
    }

    /// Guaranteed backlog-clearing rate `g_i = φ_i r / Σφ_j`.
    pub fn guaranteed_rate(&self, i: usize) -> f64 {
        self.phis[i] / self.total_phi() * self.rate
    }

    /// All guaranteed rates.
    pub fn guaranteed_rates(&self) -> Vec<f64> {
        let total = self.total_phi();
        self.phis.iter().map(|&p| p / total * self.rate).collect()
    }

    /// The normalized share `ψ` of session `i` **relative to a session
    /// subset** `others ∪ {i}`: `φ_i / Σ_{j ∈ others ∪ {i}} φ_j`. This is
    /// the `ψ_i = φ_i / Σ_{j >= i} φ_j` factor of Theorem 7 when `others`
    /// is the tail of a feasible ordering, and the
    /// `φ_i / Σ_{j ∉ H^{k-1}} φ_j` of Theorem 11 when it is the complement
    /// of the lower partition classes.
    pub fn share_within(&self, i: usize, others: &[usize]) -> f64 {
        let mut denom = self.phis[i];
        for &j in others {
            if j != i {
                denom += self.phis[j];
            }
        }
        self.phis[i] / denom
    }

    /// Whether session rates `rhos` satisfy the stability condition
    /// `Σ ρ_i < r`.
    pub fn is_stable_for(&self, rhos: &[f64]) -> bool {
        assert_eq!(rhos.len(), self.len());
        rhos.iter().sum::<f64>() < self.rate
    }
}

impl fmt::Display for GpsAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPS(r={}, φ={:?})", self.rate, self.phis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guaranteed_rates_sum_to_rate() {
        let a = GpsAssignment::new(vec![1.0, 2.0, 3.0], 2.0);
        let g = a.guaranteed_rates();
        assert!((g.iter().sum::<f64>() - 2.0).abs() < 1e-12);
        assert!((g[0] - 2.0 / 6.0).abs() < 1e-12);
        assert!((g[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rpps_guarantees_exceed_rhos_when_stable() {
        // Under RPPS with Σρ < r: g_i = ρ_i·r/Σρ > ρ_i.
        let rhos = [0.2, 0.25, 0.2, 0.25];
        let a = GpsAssignment::rpps(&rhos, 1.0);
        assert!(a.is_stable_for(&rhos));
        for (i, &rho) in rhos.iter().enumerate() {
            assert!(a.guaranteed_rate(i) > rho);
        }
        // Paper's Fig. 3 numbers: g1 = 0.2/0.9 ≈ 0.2222.
        assert!((a.guaranteed_rate(0) - 0.2 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn share_within_subsets() {
        let a = GpsAssignment::unit_rate(vec![1.0, 2.0, 3.0, 4.0]);
        // ψ of session 1 within {1,2,3}: 2/(2+3+4).
        assert!((a.share_within(1, &[2, 3]) - 2.0 / 9.0).abs() < 1e-12);
        // i included in others is deduplicated.
        assert!((a.share_within(1, &[1, 2, 3]) - 2.0 / 9.0).abs() < 1e-12);
        // Alone: share 1.
        assert_eq!(a.share_within(0, &[]), 1.0);
    }

    #[test]
    fn stability_check() {
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0]);
        assert!(a.is_stable_for(&[0.4, 0.5]));
        assert!(!a.is_stable_for(&[0.5, 0.5]));
    }

    #[test]
    #[should_panic(expected = "weights must be finite and positive")]
    fn rejects_zero_weight() {
        let _ = GpsAssignment::unit_rate(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "need at least one session")]
    fn rejects_empty() {
        let _ = GpsAssignment::unit_rate(vec![]);
    }
}
