//! The feasible partition (paper Section 5, Eqs. 37–39) and the induced
//! aggregate system (Lemma 9).
//!
//! The feasible partition `H_1, …, H_L` of the sessions is determined only
//! by the ratios `ρ_i/φ_i`:
//!
//! ```text
//! i ∈ H_1    iff  ρ_i/φ_i <  r / Σ_j φ_j
//! i ∈ H_{k+1} iff ρ_i/φ_i <  (r - Σ_{j∈H^k} ρ_j) / Σ_{j∉H^k} φ_j
//! ```
//!
//! where `H^k = H_1 ∪ … ∪ H_k`. A session lands in `H_1` exactly when its
//! long-term rate is below its guaranteed rate `g_i`; under RPPS
//! (`φ_i = ρ_i`) every ratio equals 1 and the partition collapses to a
//! single class. The partition orders the sessions into priority layers:
//! bounds for a session in `H_k` depend only on classes `H_1..H_{k-1}`.

use crate::assignment::GpsAssignment;

/// The feasible partition induced by `{ρ_i}` and `{φ_i}`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasiblePartition {
    /// `classes[k]` = session indices in `H_{k+1}`, each sorted ascending.
    classes: Vec<Vec<usize>>,
    /// `class_of[i]` = 0-based class index of session `i`.
    class_of: Vec<usize>,
}

impl FeasiblePartition {
    /// Computes the feasible partition. Requires stability
    /// (`Σ ρ_i < r`), which guarantees every stage absorbs at least one
    /// session (same exchange argument as for feasible orderings).
    ///
    /// Returns `None` if `Σ ρ_i >= r`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gps_core::{FeasiblePartition, GpsAssignment};
    /// // A light session (H1) and a heavy one relative to its weight (H2).
    /// let a = GpsAssignment::unit_rate(vec![3.0, 1.0]);
    /// let p = FeasiblePartition::compute(&[0.1, 0.55], &a).unwrap();
    /// assert_eq!(p.num_classes(), 2);
    /// assert_eq!(p.class_of(0), 0);
    /// assert_eq!(p.class_of(1), 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `rhos` has the wrong length or negative entries.
    pub fn compute(rhos: &[f64], assignment: &GpsAssignment) -> Option<Self> {
        let n = assignment.len();
        assert_eq!(rhos.len(), n, "one rho per session");
        assert!(rhos.iter().all(|&r| r >= 0.0), "rhos must be nonnegative");
        if rhos.iter().sum::<f64>() >= assignment.rate() {
            return None;
        }

        let mut class_of = vec![usize::MAX; n];
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut used_rho = 0.0;

        while !remaining.is_empty() {
            let rem_phi: f64 = remaining.iter().map(|&i| assignment.phi(i)).sum();
            let threshold = (assignment.rate() - used_rho) / rem_phi;
            let (cls, rest): (Vec<usize>, Vec<usize>) = remaining
                .iter()
                .partition(|&&i| rhos[i] / assignment.phi(i) < threshold);
            assert!(
                !cls.is_empty(),
                "feasible partition stage absorbed no session — stability \
                 should preclude this"
            );
            used_rho += cls.iter().map(|&i| rhos[i]).sum::<f64>();
            for &i in &cls {
                class_of[i] = classes.len();
            }
            classes.push(cls);
            remaining = rest;
        }
        Some(Self { classes, class_of })
    }

    /// Number of classes `L`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Sessions of class `H_{k+1}` (0-based `k`).
    pub fn class(&self, k: usize) -> &[usize] {
        &self.classes[k]
    }

    /// All classes in order.
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// 0-based class index of session `i`.
    pub fn class_of(&self, i: usize) -> usize {
        self.class_of[i]
    }

    /// All sessions in classes strictly below `k` (i.e. `H^k` in paper
    /// notation with `k` classes), ascending.
    pub fn lower_classes(&self, k: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.classes[..k].iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }

    /// Aggregate rate `ρ̃_k = Σ_{i∈H_k} ρ_i` of each class.
    pub fn aggregate_rhos(&self, rhos: &[f64]) -> Vec<f64> {
        self.classes
            .iter()
            .map(|c| c.iter().map(|&i| rhos[i]).sum())
            .collect()
    }

    /// Aggregate weight `φ̃_k = Σ_{i∈H_k} φ_i` of each class.
    pub fn aggregate_phis(&self, assignment: &GpsAssignment) -> Vec<f64> {
        self.classes
            .iter()
            .map(|c| c.iter().map(|&i| assignment.phi(i)).sum())
            .collect()
    }

    /// Verifies the interleaving chain (paper Eq. 40): the aggregate
    /// ratios `ρ̃_k/φ̃_k` are ordered, and each class's ratio lies below
    /// the residual-capacity threshold of its level while the next class's
    /// lies at or above it.
    pub fn verify_chain(&self, rhos: &[f64], assignment: &GpsAssignment) -> bool {
        let ag_rho = self.aggregate_rhos(rhos);
        let ag_phi = self.aggregate_phis(assignment);
        let l = self.num_classes();
        let mut used = 0.0;
        let mut tail_phi: f64 = ag_phi.iter().sum();
        for k in 0..l {
            let threshold = (assignment.rate() - used) / tail_phi;
            if ag_rho[k] / ag_phi[k] >= threshold {
                return false;
            }
            if k + 1 < l {
                // Next class failed this level's test.
                if ag_rho[k + 1] / ag_phi[k + 1] < threshold {
                    return false;
                }
            }
            used += ag_rho[k];
            tail_phi -= ag_phi[k];
        }
        true
    }

    /// Lemma 9: with aggregate rates `r̃_k = ρ̃_k + ε̃_k` summing to at
    /// most the server rate, the identity permutation on the classes is a
    /// feasible ordering of the aggregate system. This checks that claim
    /// numerically for the given `ε̃` vector.
    pub fn lemma9_holds(&self, rhos: &[f64], epsilons: &[f64], assignment: &GpsAssignment) -> bool {
        assert_eq!(epsilons.len(), self.num_classes());
        let ag_rho = self.aggregate_rhos(rhos);
        let ag_phi = self.aggregate_phis(assignment);
        let rs: Vec<f64> = ag_rho.iter().zip(epsilons).map(|(&r, &e)| r + e).collect();
        if rs.iter().sum::<f64>() > assignment.rate() + 1e-12 {
            return false;
        }
        let mut used = 0.0;
        let mut tail_phi: f64 = ag_phi.iter().sum();
        for k in 0..self.num_classes() {
            let budget = ag_phi[k] / tail_phi * (assignment.rate() - used);
            if rs[k] > budget + 1e-12 {
                return false;
            }
            used += rs[k];
            tail_phi -= ag_phi[k];
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpps_single_class() {
        let rhos = [0.2, 0.25, 0.2, 0.25];
        let a = GpsAssignment::rpps(&rhos, 1.0);
        let p = FeasiblePartition::compute(&rhos, &a).unwrap();
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.class(0), &[0, 1, 2, 3]);
        assert!(p.verify_chain(&rhos, &a));
    }

    #[test]
    fn two_class_example() {
        // Session 0: tiny rate, big weight -> H1.
        // Session 1: rate near its guaranteed share -> later class.
        let rhos = [0.1, 0.55];
        let a = GpsAssignment::unit_rate(vec![3.0, 1.0]);
        // Thresholds: level 1: 1/4 = 0.25. ratios: 0.1/3 = 0.033 < 0.25 ✓;
        // 0.55/1 = 0.55 >= 0.25 ✗. Level 2: (1-0.1)/1 = 0.9 > 0.55 ✓.
        let p = FeasiblePartition::compute(&rhos, &a).unwrap();
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.class(0), &[0]);
        assert_eq!(p.class(1), &[1]);
        assert_eq!(p.class_of(0), 0);
        assert_eq!(p.class_of(1), 1);
        assert!(p.verify_chain(&rhos, &a));
    }

    #[test]
    fn h1_iff_rho_below_guaranteed_rate() {
        let rhos = [0.05, 0.3, 0.2, 0.1];
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0, 1.0, 1.0]);
        let p = FeasiblePartition::compute(&rhos, &a).unwrap();
        for (i, &rho) in rhos.iter().enumerate() {
            let in_h1 = p.class_of(i) == 0;
            assert_eq!(in_h1, rho < a.guaranteed_rate(i), "session {i}");
        }
    }

    #[test]
    fn unstable_returns_none() {
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0]);
        assert!(FeasiblePartition::compute(&[0.5, 0.5], &a).is_none());
        assert!(FeasiblePartition::compute(&[0.6, 0.6], &a).is_none());
    }

    #[test]
    fn three_layers() {
        // Engineer three distinct layers with a clear hierarchy.
        let rhos = [0.01, 0.25, 0.6];
        let phis = vec![10.0, 2.0, 0.5];
        let a = GpsAssignment::unit_rate(phis);
        // Level 1 threshold: 1/12.5 = 0.08. ratios: 0.001 ✓, 0.125 ✗, 1.2 ✗.
        // Level 2: (1-0.01)/2.5 = 0.396 -> 0.125 ✓, 1.2 ✗.
        // Level 3: (1-0.26)/0.5 = 1.48 -> 1.2 ✓.
        let p = FeasiblePartition::compute(&rhos, &a).unwrap();
        assert_eq!(p.num_classes(), 3);
        assert_eq!(p.class(0), &[0]);
        assert_eq!(p.class(1), &[1]);
        assert_eq!(p.class(2), &[2]);
        assert!(p.verify_chain(&rhos, &a));
        assert_eq!(p.lower_classes(2), vec![0, 1]);
        assert_eq!(p.lower_classes(0), Vec::<usize>::new());
    }

    #[test]
    fn aggregates() {
        let rhos = [0.01, 0.25, 0.6];
        let a = GpsAssignment::unit_rate(vec![10.0, 2.0, 0.5]);
        let p = FeasiblePartition::compute(&rhos, &a).unwrap();
        assert_eq!(p.aggregate_rhos(&rhos), vec![0.01, 0.25, 0.6]);
        assert_eq!(p.aggregate_phis(&a), vec![10.0, 2.0, 0.5]);
    }

    #[test]
    fn lemma9_uniform_slack() {
        let rhos = [0.01, 0.25, 0.6];
        let a = GpsAssignment::unit_rate(vec![10.0, 2.0, 0.5]);
        let p = FeasiblePartition::compute(&rhos, &a).unwrap();
        let slack = 1.0 - rhos.iter().sum::<f64>();
        let eps = vec![slack / 3.0; 3];
        assert!(p.lemma9_holds(&rhos, &eps, &a));
        // Overcommitting epsilon fails.
        let too_much = vec![slack; 3];
        assert!(!p.lemma9_holds(&rhos, &too_much, &a));
    }

    #[test]
    fn mixed_class_memberships() {
        // Two sessions in H1, one in H2.
        let rhos = [0.1, 0.15, 0.5];
        let a = GpsAssignment::unit_rate(vec![1.0, 1.0, 1.0]);
        // Level 1: threshold 1/3: 0.1 ✓, 0.15 ✓, 0.5 ✗.
        // Level 2: (1-0.25)/1 = 0.75 > 0.5 ✓.
        let p = FeasiblePartition::compute(&rhos, &a).unwrap();
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.class(0), &[0, 1]);
        assert_eq!(p.class(1), &[2]);
        assert!(p.verify_chain(&rhos, &a));
    }
}
