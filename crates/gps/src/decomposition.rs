//! Strategies for choosing the fictitious dedicated rates `r_i = ρ_i + ε_i`
//! of the paper's decomposition (Figure 1 / Eq. 5).
//!
//! The statistical bounds hold for *any* choice with `ε_i > 0` and
//! `Σ r_i <= r`, but their tightness depends on how the slack
//! `r - Σ ρ_i` is split. Three standard strategies:
//!
//! * [`RateAllocation::Uniform`] — equal `ε_i` (the natural default);
//! * [`RateAllocation::Proportional`] — `ε_i ∝ ρ_i` (each session keeps
//!   the same relative headroom, mirroring RPPS);
//! * [`RateAllocation::WeightProportional`] — `ε_i ∝ φ_i` (headroom
//!   follows the GPS weights).
//!
//! Theorem 11's proof uses a *session-targeted* split — concentrating the
//! slack budget `g_i - ρ_i` of a target session across itself and the
//! aggregated lower classes, `ε_i = ψ_i ε̃_1 = … = (g_i - ρ_i)/k` — which
//! is provided by [`theorem11_epsilons`].

/// How the capacity slack is divided among the sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateAllocation {
    /// `ε_i = slack / N`.
    Uniform,
    /// `ε_i = slack · ρ_i / Σρ_j` (undefined when all ρ are zero; falls
    /// back to uniform then).
    Proportional,
    /// `ε_i = slack · φ_i / Σφ_j`.
    WeightProportional,
}

impl RateAllocation {
    /// Computes dedicated rates `r_i = ρ_i + ε_i` consuming a fraction
    /// `use_fraction ∈ (0, 1]` of the slack `capacity - Σρ` (using less
    /// than all slack keeps the ε's interior, which some constructions
    /// need).
    ///
    /// Returns `None` when `Σ ρ_i >= capacity` (no slack to allocate).
    pub fn dedicated_rates(
        &self,
        rhos: &[f64],
        phis: &[f64],
        capacity: f64,
        use_fraction: f64,
    ) -> Option<Vec<f64>> {
        assert_eq!(rhos.len(), phis.len());
        assert!(!rhos.is_empty());
        assert!(
            use_fraction > 0.0 && use_fraction <= 1.0,
            "use_fraction must be in (0,1], got {use_fraction}"
        );
        let total_rho: f64 = rhos.iter().sum();
        let slack = capacity - total_rho;
        if slack <= 0.0 {
            return None;
        }
        let budget = slack * use_fraction;
        let n = rhos.len();
        let eps: Vec<f64> = match self {
            RateAllocation::Uniform => vec![budget / n as f64; n],
            RateAllocation::Proportional => {
                if total_rho <= 0.0 {
                    vec![budget / n as f64; n]
                } else {
                    rhos.iter().map(|&r| budget * r / total_rho).collect()
                }
            }
            RateAllocation::WeightProportional => {
                let total_phi: f64 = phis.iter().sum();
                phis.iter().map(|&p| budget * p / total_phi).collect()
            }
        };
        Some(rhos.iter().zip(&eps).map(|(&r, &e)| r + e).collect())
    }
}

/// The Theorem-11 slack split for a target session in partition class
/// `H_k` (1-based `k = class_index + 1`): the session's own ε and the
/// *aggregate* ε̃ of each lower class all equal `(g_i - ρ_i)/k` after
/// weighting — concretely `ε_i = (g−ρ)/k` and `ε̃_l = (g−ρ)/(k·ψ_i)` for
/// each of the `k-1` lower classes, where `ψ_i` is the session's share
/// among the non-lower sessions.
///
/// Returns `(eps_own, eps_aggregate_per_lower_class)`.
///
/// # Panics
///
/// Panics unless `g > rho`, `psi ∈ (0, 1]`, `k >= 1`.
pub fn theorem11_epsilons(g: f64, rho: f64, psi: f64, k: usize) -> (f64, f64) {
    assert!(g > rho, "guaranteed rate must exceed rho");
    assert!(psi > 0.0 && psi <= 1.0, "psi must be in (0,1]");
    assert!(k >= 1);
    let share = (g - rho) / k as f64;
    (share, share / psi)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RHOS: [f64; 3] = [0.1, 0.2, 0.3];
    const PHIS: [f64; 3] = [1.0, 2.0, 3.0];

    #[test]
    fn uniform_splits_evenly() {
        let rs = RateAllocation::Uniform
            .dedicated_rates(&RHOS, &PHIS, 1.0, 1.0)
            .unwrap();
        let slack = 0.4;
        for (i, &r) in rs.iter().enumerate() {
            assert!((r - (RHOS[i] + slack / 3.0)).abs() < 1e-12);
        }
        assert!((rs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_preserves_ratios() {
        let rs = RateAllocation::Proportional
            .dedicated_rates(&RHOS, &PHIS, 1.0, 1.0)
            .unwrap();
        // r_i = ρ_i (1 + slack/Σρ): all sessions share the same relative
        // headroom.
        let scale = 1.0 / 0.6;
        for (i, &r) in rs.iter().enumerate() {
            assert!((r - RHOS[i] * scale).abs() < 1e-12);
        }
    }

    #[test]
    fn weight_proportional_follows_phis() {
        let rs = RateAllocation::WeightProportional
            .dedicated_rates(&RHOS, &PHIS, 1.0, 1.0)
            .unwrap();
        let slack = 0.4;
        for (i, &r) in rs.iter().enumerate() {
            assert!((r - (RHOS[i] + slack * PHIS[i] / 6.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_slack_leaves_headroom() {
        let rs = RateAllocation::Uniform
            .dedicated_rates(&RHOS, &PHIS, 1.0, 0.5)
            .unwrap();
        let total: f64 = rs.iter().sum();
        assert!((total - 0.8).abs() < 1e-12); // 0.6 + half of 0.4
        assert!(rs.iter().zip(&RHOS).all(|(&r, &rho)| r > rho));
    }

    #[test]
    fn no_slack_is_none() {
        assert!(RateAllocation::Uniform
            .dedicated_rates(&[0.5, 0.5], &[1.0, 1.0], 1.0, 1.0)
            .is_none());
    }

    #[test]
    fn theorem11_split_sums_to_budget() {
        // k = 3 (class H3, two lower classes): own ε + ψ·(2 aggregate ε̃)
        // must equal g - ρ (Eq. 55 with equality).
        let (g, rho, psi) = (0.3, 0.2, 0.25);
        let (own, agg) = theorem11_epsilons(g, rho, psi, 3);
        let total = own + psi * agg * 2.0;
        assert!((total - (g - rho)).abs() < 1e-12);
    }

    #[test]
    fn theorem11_k1_degenerates() {
        let (own, _) = theorem11_epsilons(0.3, 0.1, 1.0, 1);
        assert!((own - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "guaranteed rate must exceed rho")]
    fn theorem11_requires_headroom() {
        let _ = theorem11_epsilons(0.2, 0.2, 0.5, 2);
    }
}
