//! Campaign flight recorder: a bounded per-thread ring-buffer trace
//! collector behind the `GPS_OBS_TRACE` knob.
//!
//! Three modes, selected once per process:
//!
//! * **Off** (the default) — every record call is a single relaxed
//!   atomic load and an early return. No allocation, no locks: the
//!   disabled path rides inside the simulator hot loops under the same
//!   zero-allocation contract `hot_path_alloc.rs` pins for the journal.
//! * **Timing** (`GPS_OBS_TRACE=1`) — begin/end/instant events carry
//!   nanosecond timestamps into a fixed-capacity per-thread ring buffer
//!   (lock-free single-writer append; a global name-intern table is
//!   consulted only on each thread's *first* use of a label). When a
//!   buffer fills, further events are counted as dropped — never
//!   silently discarded: [`export_json`] raises the `obs.trace.dropped`
//!   counter and emits one `warn` journal event with the total.
//!   [`export_json`] renders Chrome trace-event JSON (an object with a
//!   `traceEvents` array) loadable in Perfetto / `chrome://tracing`,
//!   one lane per worker (`tid` = lane; lane 0 is the main thread,
//!   lane *w*+1 is pool worker *w* — see [`set_lane`]).
//! * **Counts** (`GPS_OBS_TRACE=counts`) — no timestamps, no bounded
//!   buffer: per-thread unbounded tallies of event counts and item
//!   totals, merged and sorted at export. The output is a pure function
//!   of the workload: byte-identical across `GPS_PAR_THREADS` and
//!   `GPS_PAR_CHUNK`, which is what the determinism tests pin.
//!
//! Determinism tiering inside counts mode: chunk *boundaries* depend on
//! the scheduler, so [`TraceKind::WorkerChunk`] exports only its summed
//! item count (= total indices processed, invariant) and omits its event
//! count; [`TraceKind::SpanScope`] events fire per worker and are
//! skipped in counts mode entirely. Everything else (checkpoint writes
//! and restores, monitor folds) happens exactly once per replication and
//! exports full counts.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Mode switch

/// What the flight recorder is doing this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Disabled: record calls cost one relaxed atomic load.
    Off,
    /// Deterministic tallies only (no timestamps, unbounded).
    Counts,
    /// Timestamped events into bounded per-thread ring buffers.
    Timing,
}

const MODE_OFF: u8 = 0;
const MODE_COUNTS: u8 = 1;
const MODE_TIMING: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_OFF);

/// The active mode.
pub fn mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_COUNTS => TraceMode::Counts,
        MODE_TIMING => TraceMode::Timing,
        _ => TraceMode::Off,
    }
}

/// Whether any tracing is active — the one load on the disabled path.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != MODE_OFF
}

/// Switches the recorder's mode at runtime (tests and benches; binaries
/// normally go through [`init_from_env`]). Buffers already recorded are
/// kept — call [`reset`] for a clean slate.
pub fn configure(mode: TraceMode) {
    epoch(); // anchor timestamps before the first event
    let m = match mode {
        TraceMode::Off => MODE_OFF,
        TraceMode::Counts => MODE_COUNTS,
        TraceMode::Timing => MODE_TIMING,
    };
    MODE.store(m, Ordering::Relaxed);
}

/// Reads `GPS_OBS_TRACE`: unset/`0`/empty ⇒ off, `counts` ⇒ counts mode,
/// anything truthy (`1`, `true`, `timing`) ⇒ timing mode. Returns the
/// mode it configured.
pub fn init_from_env() -> TraceMode {
    let mode = match std::env::var("GPS_OBS_TRACE") {
        Ok(v) if v == "counts" => TraceMode::Counts,
        Ok(v) if v == "1" || v == "true" || v == "timing" => TraceMode::Timing,
        _ => TraceMode::Off,
    };
    configure(mode);
    mode
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------
// Event taxonomy

/// What a trace event describes. The set is closed on purpose: the
/// counts-mode determinism rules (see the module docs) are per-kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceKind {
    /// One chunk of indices claimed and drained by a pool worker
    /// (`arg` = number of indices). Scheduling-dependent: counts mode
    /// exports only the summed items.
    WorkerChunk = 0,
    /// A [`crate::span::Span`] scope (timing mode only).
    SpanScope = 1,
    /// One replication appended to a supervised campaign checkpoint.
    CheckpointWrite = 2,
    /// One replication restored from a checkpoint instead of recomputed.
    CheckpointRestore = 3,
    /// One post-join bound-monitor fold over a finished replication.
    MonitorFold = 4,
    /// One HTTP request dispatched by the exporter (`arg` = request
    /// ID). Wall-clock-driven and client-dependent: excluded from the
    /// counts-mode deterministic tier, like [`TraceKind::SpanScope`].
    RequestDispatch = 5,
}

impl TraceKind {
    fn from_u8(v: u8) -> TraceKind {
        match v {
            0 => TraceKind::WorkerChunk,
            1 => TraceKind::SpanScope,
            2 => TraceKind::CheckpointWrite,
            3 => TraceKind::CheckpointRestore,
            5 => TraceKind::RequestDispatch,
            _ => TraceKind::MonitorFold,
        }
    }

    /// The Chrome trace-event `cat` / counts-mode kind label.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::WorkerChunk => "worker_chunk",
            TraceKind::SpanScope => "span",
            TraceKind::CheckpointWrite => "checkpoint_write",
            TraceKind::CheckpointRestore => "checkpoint_restore",
            TraceKind::MonitorFold => "monitor_fold",
            TraceKind::RequestDispatch => "request",
        }
    }

    /// Whether the raw event count is a pure function of the workload
    /// (counts mode exports event counts only for these kinds).
    fn deterministic_count(self) -> bool {
        !matches!(
            self,
            TraceKind::WorkerChunk | TraceKind::SpanScope | TraceKind::RequestDispatch
        )
    }
}

// ---------------------------------------------------------------------
// Worker lanes

thread_local! {
    /// The Chrome-trace `tid` this thread records under: 0 = main
    /// thread, w+1 = pool worker w.
    static LANE: Cell<u16> = const { Cell::new(0) };
}

/// Tags the current thread's events with `lane` (the pool sets
/// `worker + 1`; lane 0 is reserved for the main thread).
pub fn set_lane(lane: u16) {
    LANE.with(|l| l.set(lane));
}

// ---------------------------------------------------------------------
// Name interning (timing mode)

/// Global intern table: id → name. Locked only when a thread meets a
/// label for the first time; afterwards the thread-local cache answers.
static NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

thread_local! {
    static NAME_CACHE: RefCell<Vec<(String, u32)>> = const { RefCell::new(Vec::new()) };
}

fn intern(name: &str) -> u32 {
    NAME_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&(_, id)) = cache.iter().find(|(n, _)| n == name) {
            return id;
        }
        let mut table = NAMES.lock().unwrap();
        let id = match table.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                table.push(name.to_string());
                (table.len() - 1) as u32
            }
        };
        drop(table);
        cache.push((name.to_string(), id));
        id
    })
}

fn name_of(id: u32) -> String {
    NAMES
        .lock()
        .unwrap()
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("name#{id}"))
}

// ---------------------------------------------------------------------
// Timing mode: per-thread ring buffers

const PHASE_BEGIN: u64 = 0;
const PHASE_END: u64 = 1;
const PHASE_INSTANT: u64 = 2;

/// One recorded event slot. All-atomic so the exporter may read while a
/// straggler thread is still writing (the writer is the only thread that
/// advances `len`, with a release store after the slot is filled).
struct Slot {
    ts_ns: AtomicU64,
    /// Packed: bits 0..8 phase, 8..16 kind, 16..32 lane, 32..64 name id.
    meta: AtomicU64,
    arg: AtomicU64,
}

struct RingBuffer {
    slots: Box<[Slot]>,
    len: AtomicUsize,
    dropped: AtomicU64,
}

impl RingBuffer {
    fn new(capacity: usize) -> RingBuffer {
        let slots = (0..capacity)
            .map(|_| Slot {
                ts_ns: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect();
        RingBuffer {
            slots,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Single-writer append: plain load/store on `len` (this thread owns
    /// it), release so the exporter's acquire load sees filled slots.
    fn push(&self, ts_ns: u64, phase: u64, kind: TraceKind, lane: u16, name_id: u32, arg: u64) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let meta = phase | ((kind as u64) << 8) | ((lane as u64) << 16) | ((name_id as u64) << 32);
        self.slots[i].ts_ns.store(ts_ns, Ordering::Relaxed);
        self.slots[i].meta.store(meta, Ordering::Relaxed);
        self.slots[i].arg.store(arg, Ordering::Relaxed);
        self.len.store(i + 1, Ordering::Release);
    }
}

/// Per-thread tally for counts mode: (kind, name id) → (events, items).
type CountMap = std::collections::BTreeMap<(u8, u32), (u64, u64)>;

/// Everything the collector knows about one recording thread. Buffers
/// outlive their threads (campaign scopes spawn and join workers many
/// times per run), so the registry holds `Arc`s.
struct ThreadBuf {
    ring: RingBuffer,
    counts: Mutex<CountMap>,
}

struct Collector {
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    /// Bumped by [`reset`]; thread-locals from an older generation
    /// re-register before recording again.
    generation: AtomicU64,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        buffers: Mutex::new(Vec::new()),
        generation: AtomicU64::new(0),
    })
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("GPS_OBS_TRACE_CAP")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(65_536)
    })
}

thread_local! {
    static THREAD_BUF: RefCell<Option<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
}

fn with_thread_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    THREAD_BUF.with(|cell| {
        let mut slot = cell.borrow_mut();
        let gen_now = collector().generation.load(Ordering::Relaxed);
        let stale = match &*slot {
            Some((g, _)) => *g != gen_now,
            None => true,
        };
        if stale {
            let buf = Arc::new(ThreadBuf {
                ring: RingBuffer::new(ring_capacity()),
                counts: Mutex::new(CountMap::new()),
            });
            collector().buffers.lock().unwrap().push(Arc::clone(&buf));
            *slot = Some((gen_now, buf));
        }
        f(&slot.as_ref().unwrap().1)
    })
}

// ---------------------------------------------------------------------
// Recording

fn record(phase: u64, kind: TraceKind, name: &str, arg: u64) {
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => {}
        MODE_COUNTS => {
            // Span scopes fire per worker and request dispatches per
            // client — both scheduling-dependent — so the deterministic
            // tier ignores them entirely.
            if kind == TraceKind::SpanScope
                || kind == TraceKind::RequestDispatch
                || phase == PHASE_END
            {
                return;
            }
            let id = intern(name);
            with_thread_buf(|buf| {
                let mut counts = buf.counts.lock().unwrap();
                let entry = counts.entry((kind as u8, id)).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += arg;
            });
        }
        _ => {
            let ts = epoch().elapsed().as_nanos() as u64;
            let id = intern(name);
            let lane = LANE.with(|l| l.get());
            with_thread_buf(|buf| buf.ring.push(ts, phase, kind, lane, id, arg));
        }
    }
}

/// Records the start of a `kind` scope named `name`. `arg` rides into
/// the Chrome event's `args.items` (chunk length, replication index, …).
#[inline]
pub fn begin(kind: TraceKind, name: &str, arg: u64) {
    if !enabled() {
        return;
    }
    record(PHASE_BEGIN, kind, name, arg);
}

/// Records the end of the innermost `kind` scope named `name`.
#[inline]
pub fn end(kind: TraceKind, name: &str) {
    if !enabled() {
        return;
    }
    record(PHASE_END, kind, name, 0);
}

/// Records a point event (checkpoint writes/restores).
#[inline]
pub fn instant(kind: TraceKind, name: &str, arg: u64) {
    if !enabled() {
        return;
    }
    record(PHASE_INSTANT, kind, name, arg);
}

/// RAII begin/end pair: [`begin`] now, [`end`] on drop. Inert (and
/// allocation-free) when tracing is off.
#[derive(Debug)]
pub struct TraceScope {
    active: Option<(TraceKind, u32)>,
}

/// Opens a traced scope; the matching end event is recorded on drop.
pub fn scope(kind: TraceKind, name: &str, arg: u64) -> TraceScope {
    if !enabled() {
        return TraceScope { active: None };
    }
    record(PHASE_BEGIN, kind, name, arg);
    TraceScope {
        active: Some((kind, intern(name))),
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some((kind, id)) = self.active.take() {
            if MODE.load(Ordering::Relaxed) == MODE_TIMING {
                let ts = epoch().elapsed().as_nanos() as u64;
                let lane = LANE.with(|l| l.get());
                with_thread_buf(|buf| buf.ring.push(ts, PHASE_END, kind, lane, id, 0));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Export

/// Total events dropped so far because a ring buffer was full.
pub fn dropped_total() -> u64 {
    collector()
        .buffers
        .lock()
        .unwrap()
        .iter()
        .map(|b| b.ring.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Discards every recorded event, tally, and drop count (the mode is
/// untouched). Thread-local buffers re-register lazily via a generation
/// bump, so tests can run several independent recordings in one process.
pub fn reset() {
    let c = collector();
    c.generation.fetch_add(1, Ordering::Relaxed);
    c.buffers.lock().unwrap().clear();
}

fn fmt_ts_us(ns: u64) -> String {
    // Chrome trace timestamps are microseconds; keep nanosecond
    // resolution as a fixed three-decimal fraction.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One decoded event, ordered for export.
struct Decoded {
    ts_ns: u64,
    lane: u16,
    phase: u64,
    kind: TraceKind,
    name_id: u32,
    arg: u64,
}

fn drain_decoded() -> Vec<Decoded> {
    let buffers = collector().buffers.lock().unwrap();
    let mut out = Vec::new();
    for buf in buffers.iter() {
        let len = buf
            .ring
            .len
            .load(Ordering::Acquire)
            .min(buf.ring.slots.len());
        for slot in &buf.ring.slots[..len] {
            let meta = slot.meta.load(Ordering::Relaxed);
            out.push(Decoded {
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                lane: ((meta >> 16) & 0xffff) as u16,
                phase: meta & 0xff,
                kind: TraceKind::from_u8(((meta >> 8) & 0xff) as u8),
                name_id: ((meta >> 32) & 0xffff_ffff) as u32,
                arg: slot.arg.load(Ordering::Relaxed),
            });
        }
    }
    out.sort_by_key(|e| (e.ts_ns, e.lane, e.phase));
    out
}

fn export_timing(campaign: &str) -> String {
    let events = drain_decoded();
    let mut lanes: Vec<u16> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for &lane in &lanes {
        let label = if lane == 0 {
            "main".to_string()
        } else {
            format!("worker-{}", lane - 1)
        };
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }
    for e in &events {
        let ph = match e.phase {
            PHASE_BEGIN => "B",
            PHASE_END => "E",
            _ => "i",
        };
        let mut name = String::new();
        crate::json::write_escaped(&name_of(e.name_id), &mut name);
        let mut ev = format!(
            "{{\"name\":{name},\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\
             \"pid\":1,\"tid\":{}",
            e.kind.label(),
            fmt_ts_us(e.ts_ns),
            e.lane
        );
        if e.phase == PHASE_INSTANT {
            ev.push_str(",\"s\":\"t\"");
        }
        if e.phase != PHASE_END {
            ev.push_str(&format!(",\"args\":{{\"items\":{}}}", e.arg));
        }
        ev.push('}');
        push(ev, &mut out, &mut first);
    }
    let mut camp = String::new();
    crate::json::write_escaped(campaign, &mut camp);
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"campaign\":{camp},\
         \"dropped\":{}}}}}",
        dropped_total()
    ));
    out
}

fn export_counts(campaign: &str) -> String {
    // Merge every thread's tallies; BTreeMap keys sort by (kind, name).
    let mut merged: std::collections::BTreeMap<(u8, String), (u64, u64)> =
        std::collections::BTreeMap::new();
    for buf in collector().buffers.lock().unwrap().iter() {
        for (&(kind, id), &(count, items)) in buf.counts.lock().unwrap().iter() {
            let entry = merged.entry((kind, name_of(id))).or_insert((0, 0));
            entry.0 += count;
            entry.1 += items;
        }
    }
    let mut out = String::from("{\"trace\":\"counts\",\"campaign\":");
    crate::json::write_escaped(campaign, &mut out);
    out.push_str(",\"events\":[");
    let mut first = true;
    for ((kind, name), (count, items)) in &merged {
        if !first {
            out.push(',');
        }
        first = false;
        let kind = TraceKind::from_u8(*kind);
        out.push_str("{\"kind\":\"");
        out.push_str(kind.label());
        out.push_str("\",\"name\":");
        crate::json::write_escaped(name, &mut out);
        if kind.deterministic_count() {
            out.push_str(&format!(",\"count\":{count}"));
        }
        out.push_str(&format!(",\"items\":{items}}}"));
    }
    out.push_str("]}");
    out
}

/// Renders everything recorded so far for the campaign named `campaign`:
/// Chrome trace-event JSON in timing mode, the deterministic tally
/// document in counts mode, `None` when tracing is off.
///
/// If any ring buffer overflowed, this also bumps the
/// `obs.trace.dropped` counter on the global registry and emits one
/// `warn` journal event carrying the total — truncation is never silent.
pub fn export_json(campaign: &str) -> Option<String> {
    let mode = mode();
    let dropped = dropped_total();
    if dropped > 0 {
        crate::metrics().counter("obs.trace.dropped").add(dropped);
        crate::warn(
            "obs.trace",
            "events_dropped",
            &[
                ("campaign", campaign.into()),
                ("dropped", dropped.into()),
                ("ring_capacity", (ring_capacity() as u64).into()),
            ],
        );
    }
    match mode {
        TraceMode::Off => None,
        TraceMode::Counts => Some(export_counts(campaign)),
        TraceMode::Timing => Some(export_timing(campaign)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The mode switch is process-global, so every test here serializes
    // behind one lock and restores Off on exit.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct ModeGuard;
    impl Drop for ModeGuard {
        fn drop(&mut self) {
            configure(TraceMode::Off);
            reset();
        }
    }

    fn exclusive(mode: TraceMode) -> (std::sync::MutexGuard<'static, ()>, ModeGuard) {
        let lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        configure(mode);
        (lock, ModeGuard)
    }

    #[test]
    fn off_mode_records_and_exports_nothing() {
        let _g = exclusive(TraceMode::Off);
        begin(TraceKind::WorkerChunk, "chunk", 5);
        end(TraceKind::WorkerChunk, "chunk");
        instant(TraceKind::CheckpointWrite, "ckpt", 1);
        assert_eq!(export_json("t"), None);
        assert_eq!(dropped_total(), 0);
    }

    #[test]
    fn counts_mode_is_thread_independent() {
        let _g = exclusive(TraceMode::Counts);
        instant(TraceKind::CheckpointWrite, "ckpt", 1);
        instant(TraceKind::CheckpointWrite, "ckpt", 1);
        begin(TraceKind::WorkerChunk, "chunk", 7);
        end(TraceKind::WorkerChunk, "chunk");
        let solo = export_json("t").unwrap();
        reset();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| instant(TraceKind::CheckpointWrite, "ckpt", 1));
            }
        });
        std::thread::scope(|s| {
            s.spawn(|| {
                begin(TraceKind::WorkerChunk, "chunk", 3);
                end(TraceKind::WorkerChunk, "chunk");
            });
            s.spawn(|| {
                begin(TraceKind::WorkerChunk, "chunk", 4);
                end(TraceKind::WorkerChunk, "chunk");
            });
        });
        let multi = export_json("t").unwrap();
        // Two chunk events instead of one, but the same summed items and
        // the same checkpoint count ⇒ identical bytes.
        assert_eq!(solo, multi);
        assert!(solo.contains("\"kind\":\"checkpoint_write\""));
        assert!(solo.contains("\"count\":2"));
        assert!(solo.contains("\"items\":7"));
        assert!(!solo.contains("\"kind\":\"worker_chunk\",\"name\":\"chunk\",\"count\""));
    }

    #[test]
    fn timing_mode_exports_chrome_events_with_lanes() {
        let _g = exclusive(TraceMode::Timing);
        begin(TraceKind::WorkerChunk, "chunk", 9);
        end(TraceKind::WorkerChunk, "chunk");
        std::thread::scope(|s| {
            s.spawn(|| {
                set_lane(2);
                let _scope = scope(TraceKind::WorkerChunk, "chunk", 4);
                instant(TraceKind::CheckpointWrite, "ckpt \"quoted\"", 1);
            });
        });
        let json = export_json("demo").unwrap();
        let doc = crate::json::parse(&json).expect("chrome trace parses");
        let events = match doc.get("traceEvents") {
            Some(crate::json::Json::Arr(evs)) => evs.clone(),
            other => panic!("no traceEvents array: {other:?}"),
        };
        // 2 thread_name metadata + 2 main events + 3 worker events.
        assert_eq!(events.len(), 7);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(phases.iter().filter(|&&p| p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|&&p| p == "B").count(), 2);
        assert_eq!(phases.iter().filter(|&&p| p == "E").count(), 2);
        assert_eq!(phases.iter().filter(|&&p| p == "i").count(), 1);
        // The quoted name survived escaping (the parser accepted it) and
        // the worker events carry tid 2.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("ckpt \"quoted\"")
                && e.get("tid").and_then(|t| t.as_u64()) == Some(2)
        }));
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped"))
                .and_then(|d| d.as_u64()),
            Some(0)
        );
    }

    #[test]
    fn full_ring_counts_drops_instead_of_blocking() {
        let _g = exclusive(TraceMode::Timing);
        let cap = ring_capacity();
        for i in 0..(cap as u64 + 10) {
            instant(TraceKind::CheckpointWrite, "w", i);
        }
        assert_eq!(dropped_total(), 10);
        let json = export_json("overflow").unwrap();
        assert!(json.contains("\"dropped\":10"));
    }

    #[test]
    fn scope_guard_is_inert_when_off() {
        let _g = exclusive(TraceMode::Off);
        {
            let s = scope(TraceKind::MonitorFold, "fold", 0);
            assert!(s.active.is_none());
        }
        assert_eq!(export_json("t"), None);
    }
}
