//! Live campaign progress: a process-global tracker the campaign engine
//! updates per replication and the exporter serves at `/progress`.
//!
//! The tracker is deliberately cheap — plain relaxed atomics, bumped
//! once per replication (orders of magnitude coarser than the simulator
//! slot loop) — so it is always on; there is no knob. The *served* JSON
//! includes wall-clock-derived fields (elapsed, throughput, ETA), which
//! is fine because `/progress` is a live surface, not a results
//! artifact. The gauge mirror ([`publish_gauges`]) is timing-gated by
//! the caller for the same reason the pool's `par.pool.workers` gauge
//! is: final gauge values for done/total are deterministic, but the
//! restored/retried counts differ between a straight-through and a
//! resumed run of the same campaign, and the metrics snapshots of those
//! two runs must stay byte-identical in the default configuration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The process-global campaign progress state.
#[derive(Debug)]
pub struct Progress {
    campaign: Mutex<(String, Option<Instant>)>,
    total: AtomicU64,
    done: AtomicU64,
    restored: AtomicU64,
    retried: AtomicU64,
    quarantined: AtomicU64,
    chunks: AtomicU64,
}

static PROGRESS: Progress = Progress {
    campaign: Mutex::new((String::new(), None)),
    total: AtomicU64::new(0),
    done: AtomicU64::new(0),
    restored: AtomicU64::new(0),
    retried: AtomicU64::new(0),
    quarantined: AtomicU64::new(0),
    chunks: AtomicU64::new(0),
};

/// The global tracker.
pub fn global_progress() -> &'static Progress {
    &PROGRESS
}

impl Progress {
    /// Starts (or restarts) tracking a campaign of `total` replications:
    /// zeroes every counter and anchors the throughput clock.
    pub fn begin_campaign(&self, name: &str, total: u64) {
        *self.campaign.lock().unwrap() = (name.to_string(), Some(Instant::now()));
        self.total.store(total, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        self.restored.store(0, Ordering::Relaxed);
        self.retried.store(0, Ordering::Relaxed);
        self.quarantined.store(0, Ordering::Relaxed);
        self.chunks.store(0, Ordering::Relaxed);
    }

    /// `n` more replications finished (computed, not restored).
    pub fn add_done(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more replications restored from a checkpoint.
    pub fn add_restored(&self, n: u64) {
        self.restored.fetch_add(n, Ordering::Relaxed);
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more replication attempts were retried after a panic.
    pub fn add_retried(&self, n: u64) {
        self.retried.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` more replications were quarantined (retries exhausted).
    pub fn add_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// One more worker chunk was drained.
    pub fn add_chunk(&self) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
    }

    /// Replications completed so far (computed + restored + quarantined).
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// The campaign's replication target.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Renders the live JSON document served at `/progress`. Elapsed,
    /// throughput, and ETA come from the wall clock; everything else is
    /// the raw counters.
    pub fn to_json(&self) -> String {
        let (name, started) = {
            let g = self.campaign.lock().unwrap();
            (g.0.clone(), g.1)
        };
        let total = self.total.load(Ordering::Relaxed);
        let done = self.done.load(Ordering::Relaxed);
        let elapsed = started.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 && total > done {
            (total - done) as f64 / rate
        } else {
            0.0
        };
        let mut out = String::from("{\"campaign\":");
        crate::json::write_escaped(&name, &mut out);
        out.push_str(&format!(
            ",\"total\":{total},\"done\":{done},\"restored\":{},\
             \"retried\":{},\"quarantined\":{},\"chunks\":{},\
             \"elapsed_s\":{},\"rate_per_s\":{},\"eta_s\":{}}}",
            self.restored.load(Ordering::Relaxed),
            self.retried.load(Ordering::Relaxed),
            self.quarantined.load(Ordering::Relaxed),
            self.chunks.load(Ordering::Relaxed),
            crate::json::fmt_f64(elapsed),
            crate::json::fmt_f64(rate),
            crate::json::fmt_f64(eta),
        ));
        out
    }

    /// Mirrors the counters into `registry` as `sim.progress.*` gauges.
    /// Callers gate this behind the timing switch: restored/retried
    /// counts are run-history-dependent and must stay out of the
    /// deterministic metrics snapshot in the default configuration.
    pub fn publish_gauges(&self, registry: &crate::metrics::Registry) {
        registry
            .gauge("sim.progress.total")
            .set(self.total.load(Ordering::Relaxed) as f64);
        registry
            .gauge("sim.progress.done")
            .set(self.done.load(Ordering::Relaxed) as f64);
        registry
            .gauge("sim.progress.restored")
            .set(self.restored.load(Ordering::Relaxed) as f64);
        registry
            .gauge("sim.progress.retried")
            .set(self.retried.load(Ordering::Relaxed) as f64);
        registry
            .gauge("sim.progress.quarantined")
            .set(self.quarantined.load(Ordering::Relaxed) as f64);
        registry
            .gauge("sim.progress.chunks")
            .set(self.chunks.load(Ordering::Relaxed) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counts_and_json_shape() {
        let p = Progress {
            campaign: Mutex::new((String::new(), None)),
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        };
        p.begin_campaign("demo", 8);
        p.add_done(3);
        p.add_restored(2);
        p.add_retried(1);
        p.add_quarantined(1);
        p.add_chunk();
        assert_eq!(p.done(), 6);
        assert_eq!(p.total(), 8);
        let j = p.to_json();
        let doc = crate::json::parse(&j).unwrap_or_else(|e| panic!("{e}: {j}"));
        assert_eq!(doc.get("campaign").and_then(|v| v.as_str()), Some("demo"));
        assert_eq!(doc.get("total").and_then(|v| v.as_u64()), Some(8));
        assert_eq!(doc.get("done").and_then(|v| v.as_u64()), Some(6));
        assert_eq!(doc.get("restored").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(doc.get("retried").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("quarantined").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("chunks").and_then(|v| v.as_u64()), Some(1));
        assert!(doc.get("rate_per_s").and_then(|v| v.as_f64()).is_some());
        assert!(doc.get("eta_s").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    fn begin_campaign_resets_counters() {
        let p = Progress {
            campaign: Mutex::new((String::new(), None)),
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        };
        p.begin_campaign("a", 4);
        p.add_done(4);
        p.begin_campaign("b", 2);
        assert_eq!(p.done(), 0);
        assert_eq!(p.total(), 2);
    }

    #[test]
    fn gauges_mirror_counters() {
        // A local tracker: the global one is exercised by the exporter's
        // `/progress` round-trip test, which runs in parallel with this.
        let p = Progress {
            campaign: Mutex::new((String::new(), None)),
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        };
        p.begin_campaign("gauge_test", 5);
        p.add_done(5);
        let r = crate::metrics::Registry::new();
        p.publish_gauges(&r);
        let snap = r.snapshot();
        let get = |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("sim.progress.total"), Some(5.0));
        assert_eq!(get("sim.progress.done"), Some(5.0));
        assert_eq!(get("sim.progress.quarantined"), Some(0.0));
    }
}
