//! Online bound-violation monitoring: compare empirical tail frequencies
//! `P(Q_i > b)` / `P(D_i > d)` against analytic exponential tail bounds
//! while a campaign is still folding replications.
//!
//! The curves live here as plain `(prefactor, decay)` pairs rather than
//! as `gps_ebb`/`gps_analysis` types: `gps_obs` sits below those crates
//! in the dependency graph, and the bound the paper's theorems produce
//! is always of the form `min(1, Λ·e^{-θx})` — two floats carry it
//! losslessly. Experiment binaries construct [`BoundCurve`]s from
//! whatever theorem applies (Theorem 7/8, Lemma 5, Theorem 10, …) and
//! hand them to the campaign runner, which calls back per replication
//! fold.
//!
//! A *violation* is a grid point where the empirical frequency exceeds
//! the bound by more than finite-sample noise allows:
//!
//! ```text
//! p  >  tolerance · min(1, Λ·e^{-θx})  +  sigmas · sqrt(p(1-p)/n)
//! ```
//!
//! with `sigmas = 3` (the same 3σ binomial allowance the validation
//! binaries print) and `tolerance` from `GPS_OBS_VIOL_TOL` (default 1 —
//! the theorems are strict dominance claims, so no extra slack is needed
//! beyond the standard-error term; raise it to quiet short exploratory
//! runs). Confirmed violations emit a `warn` journal event on
//! `obs.monitor` and bump the `obs.bound_violations` counter (plus a
//! per-session/kind labeled counter), so a long campaign flags a broken
//! bound the moment it appears instead of after a CSV diff.

use crate::metrics::{labeled, Registry};

/// The tolerance environment knob.
pub const VIOLATION_TOLERANCE_ENV: &str = "GPS_OBS_VIOL_TOL";

/// An exponential tail bound `x ↦ min(1, Λ·e^{-θx})`, the shape every
/// E.B.B.-style theorem in this workspace produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundCurve {
    /// The prefactor Λ.
    pub prefactor: f64,
    /// The decay rate θ.
    pub decay: f64,
}

impl BoundCurve {
    /// A curve with prefactor `prefactor` and decay `decay`.
    pub fn new(prefactor: f64, decay: f64) -> BoundCurve {
        BoundCurve { prefactor, decay }
    }

    /// The bound at `x`, clamped to be a probability.
    pub fn tail(&self, x: f64) -> f64 {
        (self.prefactor * (-self.decay * x).exp()).min(1.0)
    }
}

/// The analytic curves for one session: backlog and/or delay, plus an
/// optional left shift applied to delay thresholds before evaluating the
/// bound (the network validation compares at `d-1` because the slotted
/// simulator timestamps departures at slot *ends*).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionCurves {
    /// Backlog tail bound, if monitored.
    pub backlog: Option<BoundCurve>,
    /// Delay tail bound, if monitored.
    pub delay: Option<BoundCurve>,
    /// Slots subtracted from a delay threshold before evaluating the
    /// delay bound.
    pub delay_shift: f64,
}

/// Which empirical series a check is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Backlog CCDF `P(Q > b)`.
    Backlog,
    /// Delay CCDF `P(D > d)`.
    Delay,
}

impl SeriesKind {
    /// The wire/label name.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Backlog => "backlog",
            SeriesKind::Delay => "delay",
        }
    }
}

/// The online monitor: per-session curves plus the noise allowance.
#[derive(Debug, Clone)]
pub struct BoundMonitor {
    curves: Vec<SessionCurves>,
    tolerance: f64,
    sigmas: f64,
}

impl BoundMonitor {
    /// A monitor over `curves` (indexed by session), with the tolerance
    /// taken from `GPS_OBS_VIOL_TOL` (default 1.0) and a 3σ binomial
    /// standard-error allowance.
    pub fn new(curves: Vec<SessionCurves>) -> BoundMonitor {
        let tolerance = std::env::var(VIOLATION_TOLERANCE_ENV)
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|t| t.is_finite() && *t > 0.0)
            .unwrap_or(1.0);
        BoundMonitor {
            curves,
            tolerance,
            sigmas: 3.0,
        }
    }

    /// Overrides the multiplicative tolerance (ignoring the env knob).
    pub fn with_tolerance(mut self, tolerance: f64) -> BoundMonitor {
        self.tolerance = tolerance;
        self
    }

    /// Overrides the standard-error allowance multiplier.
    pub fn with_sigmas(mut self, sigmas: f64) -> BoundMonitor {
        self.sigmas = sigmas;
        self
    }

    /// Number of sessions the monitor covers.
    pub fn num_sessions(&self) -> usize {
        self.curves.len()
    }

    /// The active multiplicative tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Checks one empirical CCDF series (grid point, frequency) for
    /// session `session` against its analytic curve, with `samples`
    /// observations behind each frequency and `fold` identifying the
    /// replication fold being checked. Returns the number of violating
    /// grid points; on any violation, emits one `warn` journal event and
    /// bumps the `obs.bound_violations` counters on `registry`.
    ///
    /// Sessions without a curve for `kind`, vacuous grid points
    /// (`bound ≥ 1`), and empty sample sets are all silently fine.
    pub fn check_series(
        &self,
        registry: &Registry,
        session: usize,
        kind: SeriesKind,
        series: &[(f64, f64)],
        samples: u64,
        fold: u64,
    ) -> u64 {
        let Some(sc) = self.curves.get(session) else {
            return 0;
        };
        let (curve, shift) = match kind {
            SeriesKind::Backlog => (sc.backlog, 0.0),
            SeriesKind::Delay => (sc.delay, sc.delay_shift),
        };
        let Some(curve) = curve else {
            return 0;
        };
        if samples == 0 {
            return 0;
        }
        let mut violations = 0u64;
        // The grid point with the largest excess, reported in the event.
        let mut worst = (0.0f64, 0.0f64, 0.0f64, f64::NEG_INFINITY);
        for &(x, p) in series {
            let bound = self.tolerance * curve.tail((x - shift).max(0.0));
            if bound >= 1.0 {
                continue;
            }
            let se = (p * (1.0 - p) / samples as f64).sqrt();
            let excess = p - (bound + self.sigmas * se);
            if excess > 0.0 {
                violations += 1;
                if excess > worst.3 {
                    worst = (x, p, bound, excess);
                }
            }
        }
        if violations > 0 {
            let (x, p, bound, _) = worst;
            crate::warn(
                "obs.monitor",
                "bound_violation",
                &[
                    ("session", session.into()),
                    ("kind", kind.as_str().into()),
                    ("fold", fold.into()),
                    ("points", violations.into()),
                    ("x", x.into()),
                    ("empirical", p.into()),
                    ("bound", bound.into()),
                    ("samples", samples.into()),
                    ("tolerance", self.tolerance.into()),
                ],
            );
            registry.counter("obs.bound_violations").add(violations);
            let session_label = session.to_string();
            registry
                .counter(&labeled(
                    "obs.bound_violations.by_series",
                    &[("session", &session_label), ("kind", kind.as_str())],
                ))
                .add(violations);
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_from(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
        points.to_vec()
    }

    #[test]
    fn curve_tail_is_clamped() {
        let c = BoundCurve::new(50.0, 1.0);
        assert_eq!(c.tail(0.0), 1.0);
        assert!((c.tail(10.0) - 50.0 * (-10.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn dominated_series_is_silent() {
        let r = Registry::new();
        let m = BoundMonitor::new(vec![SessionCurves {
            backlog: Some(BoundCurve::new(1.0, 0.5)),
            ..Default::default()
        }])
        .with_tolerance(1.0);
        // Empirical tail well under e^{-x/2}.
        let s = series_from(&[(0.0, 1.0), (2.0, 0.1), (4.0, 0.01), (8.0, 0.0)]);
        assert_eq!(
            m.check_series(&r, 0, SeriesKind::Backlog, &s, 100_000, 0),
            0
        );
        assert_eq!(r.counter("obs.bound_violations").get(), 0);
    }

    #[test]
    fn exceedance_fires_counter() {
        let r = Registry::new();
        // Absurdly tight bound: everything nonzero beyond x=0 violates.
        let m = BoundMonitor::new(vec![SessionCurves {
            backlog: Some(BoundCurve::new(1e-9, 5.0)),
            ..Default::default()
        }])
        .with_tolerance(1.0);
        let s = series_from(&[(1.0, 0.5), (2.0, 0.25), (3.0, 0.0)]);
        let v = m.check_series(&r, 0, SeriesKind::Backlog, &s, 1_000_000, 3);
        assert_eq!(v, 2); // the zero-frequency point cannot violate
        assert_eq!(r.counter("obs.bound_violations").get(), 2);
        assert_eq!(
            r.counter("obs.bound_violations.by_series{session=0,kind=backlog}")
                .get(),
            2
        );
    }

    #[test]
    fn small_samples_are_forgiven_by_standard_error() {
        let r = Registry::new();
        let m = BoundMonitor::new(vec![SessionCurves {
            backlog: Some(BoundCurve::new(1.0, 1.0)),
            ..Default::default()
        }])
        .with_tolerance(1.0);
        // p = 0.5 at x = 1 exceeds e^{-1} ≈ 0.368, but with only 10
        // samples the 3σ allowance (≈ 0.47) absorbs it…
        let s = series_from(&[(1.0, 0.5)]);
        assert_eq!(m.check_series(&r, 0, SeriesKind::Backlog, &s, 10, 0), 0);
        // …and with 10⁶ samples it does not.
        assert_eq!(
            m.check_series(&r, 0, SeriesKind::Backlog, &s, 1_000_000, 0),
            1
        );
    }

    #[test]
    fn tolerance_scales_the_bound() {
        let r = Registry::new();
        let curves = vec![SessionCurves {
            backlog: Some(BoundCurve::new(1.0, 1.0)),
            ..Default::default()
        }];
        let s = series_from(&[(1.0, 0.5)]);
        let strict = BoundMonitor::new(curves.clone()).with_tolerance(1.0);
        assert_eq!(
            strict.check_series(&r, 0, SeriesKind::Backlog, &s, 1_000_000, 0),
            1
        );
        let slack = BoundMonitor::new(curves).with_tolerance(2.0);
        assert_eq!(
            slack.check_series(&r, 0, SeriesKind::Backlog, &s, 1_000_000, 0),
            0
        );
    }

    #[test]
    fn delay_shift_moves_the_threshold() {
        let r = Registry::new();
        let m = BoundMonitor::new(vec![SessionCurves {
            backlog: None,
            delay: Some(BoundCurve::new(0.9, 2.0)),
            delay_shift: 1.0,
        }])
        .with_tolerance(1.0);
        // At d = 1 the shifted bound is evaluated at 0 → 0.9; p = 0.5
        // does not violate. Without the shift it would (bound ≈ 0.12).
        let s = series_from(&[(1.0, 0.5)]);
        assert_eq!(
            m.check_series(&r, 0, SeriesKind::Delay, &s, 1_000_000, 0),
            0
        );
        let unshifted = BoundMonitor::new(vec![SessionCurves {
            backlog: None,
            delay: Some(BoundCurve::new(0.9, 2.0)),
            delay_shift: 0.0,
        }])
        .with_tolerance(1.0);
        assert_eq!(
            unshifted.check_series(&r, 0, SeriesKind::Delay, &s, 1_000_000, 0),
            1
        );
    }

    #[test]
    fn missing_session_or_curve_is_silent() {
        let r = Registry::new();
        let m = BoundMonitor::new(vec![SessionCurves::default()]);
        let s = series_from(&[(1.0, 1.0)]);
        assert_eq!(m.check_series(&r, 0, SeriesKind::Backlog, &s, 1000, 0), 0);
        assert_eq!(m.check_series(&r, 5, SeriesKind::Backlog, &s, 1000, 0), 0);
        assert_eq!(m.check_series(&r, 0, SeriesKind::Backlog, &s, 0, 0), 0);
    }
}
