//! The structured event journal: leveled, component-targeted events
//! serialized as NDJSON (one JSON object per line) to a runtime-selectable
//! sink.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** The default sink is [`Sink::Noop`]; an emission
//!    against it is two relaxed atomic loads — no allocation, no
//!    formatting, no lock. Call sites therefore never need their own
//!    `if verbose` guards.
//! 2. **Machine-readable.** Every line is a complete JSON object with a
//!    fixed key order (`seq`, `t_us`, `level`, `component`, `event`,
//!    `fields`), so journals are `diff`-able and greppable.
//! 3. **Line-atomic.** Concurrent emitters (the `gps_par` pool runs
//!    campaign replications on worker threads) must never interleave
//!    bytes within a line: each event is serialized to one buffer —
//!    including the trailing newline — and written with a single
//!    `write_all` under the sink lock. Sequence numbers are assigned
//!    under the same lock, so they are strictly increasing in file
//!    order.
//! 4. **Deterministic modulo time.** `t_us` (microseconds since the
//!    journal was created) is the *only* timing field; stripping it (see
//!    [`strip_timing_line`]) from two same-seed runs must yield
//!    byte-identical journals.
//!
//! The sink is runtime-swappable ([`Journal::set_sink`] /
//! [`Journal::reconfigure`]): the process-global hub is frozen on first
//! use, so benches and the exporter need to redirect an already-installed
//! journal without rebuilding it.

use crate::json::{self, write_escaped, Json};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// High-volume diagnostics (per-phase solver detail).
    Debug = 0,
    /// Campaign progress and provenance (the default emission level).
    Info = 1,
    /// Unexpected-but-survivable conditions.
    Warn = 2,
    /// Failures worth aborting over.
    Error = 3,
}

impl Level {
    /// The lowercase wire name (`"info"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a wire name; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A borrowed field value; numbers and strings only, so emission never
/// heap-allocates on behalf of the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (seeds, counts, slot numbers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rates, probabilities); non-finite serializes as `null`.
    F64(f64),
    /// Borrowed string.
    Str(&'a str),
}

impl<'a> From<bool> for FieldValue<'a> {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl<'a> From<u64> for FieldValue<'a> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl<'a> From<usize> for FieldValue<'a> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl<'a> From<i64> for FieldValue<'a> {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl<'a> From<f64> for FieldValue<'a> {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue<'_> {
    fn write(&self, out: &mut String) {
        match *self {
            FieldValue::Bool(b) => out.push_str(if b { "true" } else { "false" }),
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => out.push_str(&json::fmt_f64(v)),
            FieldValue::Str(s) => write_escaped(s, out),
        }
    }
}

/// Where journal lines go. Writers live behind the journal's sink lock,
/// so the variants hold plain (unsynchronized) handles.
#[derive(Debug)]
pub enum Sink {
    /// Discard everything; emission is a single branch.
    Noop,
    /// One line per event on standard error (one `write_all` per line on
    /// the locked handle — lines never interleave).
    Stderr,
    /// Append to a file (buffered; flushed per line so crashes lose at
    /// most the in-flight event).
    File(BufWriter<File>),
}

impl Sink {
    fn is_noop(&self) -> bool {
        matches!(self, Sink::Noop)
    }

    /// Opens the writer a [`SinkKind`] describes (parent directories are
    /// created for file sinks).
    pub fn open(kind: &SinkKind) -> std::io::Result<Sink> {
        Ok(match kind {
            SinkKind::Noop => Sink::Noop,
            SinkKind::Stderr => Sink::Stderr,
            SinkKind::File(path) => {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                Sink::File(BufWriter::new(File::create(path)?))
            }
        })
    }
}

/// How a sink is requested before it is opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkKind {
    /// [`Sink::Noop`].
    Noop,
    /// [`Sink::Stderr`].
    Stderr,
    /// [`Sink::File`] at the given path.
    File(PathBuf),
}

impl SinkKind {
    /// Parses `"noop"` / `"stderr"`; anything else is treated as a file
    /// path.
    pub fn parse(s: &str) -> SinkKind {
        match s {
            "noop" | "none" | "off" => SinkKind::Noop,
            "stderr" => SinkKind::Stderr,
            path => SinkKind::File(PathBuf::from(path)),
        }
    }
}

/// The structured event journal.
///
/// `enabled()` is lock-free (two relaxed atomic loads) so the disabled
/// fast path costs nothing; an actual emission serializes the whole line
/// first-to-newline into one buffer and performs a single locked
/// `write_all`, keeping NDJSON line-atomic under concurrent emitters.
#[derive(Debug)]
pub struct Journal {
    sink: Mutex<Sink>,
    /// Mirror of `!sink.is_noop()`, readable without the lock.
    active: AtomicBool,
    min_level: AtomicU8,
    seq: AtomicU64,
    epoch: Instant,
}

impl Journal {
    /// A journal that discards everything (the library default).
    pub fn noop() -> Journal {
        Journal::new(Sink::Noop, Level::Info)
    }

    /// A journal with an explicit sink and minimum level.
    pub fn new(sink: Sink, min_level: Level) -> Journal {
        let active = !sink.is_noop();
        Journal {
            sink: Mutex::new(sink),
            active: AtomicBool::new(active),
            min_level: AtomicU8::new(min_level as u8),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Opens a journal writing NDJSON to `path` (parent directories are
    /// created).
    pub fn file(path: &Path, min_level: Level) -> std::io::Result<Journal> {
        Ok(Journal::new(
            Sink::open(&SinkKind::File(path.to_path_buf()))?,
            min_level,
        ))
    }

    /// Builds a journal from a [`SinkKind`].
    pub fn from_kind(kind: &SinkKind, min_level: Level) -> std::io::Result<Journal> {
        Ok(Journal::new(Sink::open(kind)?, min_level))
    }

    /// Swaps the sink and minimum level in place. The sequence counter
    /// and epoch carry over, so a redirected journal keeps a single
    /// monotone event stream.
    pub fn set_sink(&self, sink: Sink, min_level: Level) {
        let active = !sink.is_noop();
        let mut guard = self.sink.lock().expect("journal sink poisoned");
        *guard = sink;
        self.min_level.store(min_level as u8, Ordering::Relaxed);
        self.active.store(active, Ordering::Relaxed);
    }

    /// Opens the sink a [`SinkKind`] describes and installs it. On error
    /// the current sink is left untouched.
    pub fn reconfigure(&self, kind: &SinkKind, min_level: Level) -> std::io::Result<()> {
        let sink = Sink::open(kind)?;
        self.set_sink(sink, min_level);
        Ok(())
    }

    /// Whether an event at `level` would be written. Callers with
    /// expensive-to-compute fields should branch on this first.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        self.active.load(Ordering::Relaxed) && level as u8 >= self.min_level.load(Ordering::Relaxed)
    }

    /// The current minimum level.
    pub fn min_level(&self) -> Level {
        Level::from_u8(self.min_level.load(Ordering::Relaxed))
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Emits one event. `component` is a dotted target (`"sim.runner"`),
    /// `event` a snake_case name, `fields` ordered key/value pairs.
    pub fn emit(&self, level: Level, component: &str, event: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled(level) {
            return;
        }
        // Sequence assignment, serialization, and the write all happen
        // under the sink lock: lines land whole and in seq order even
        // with the gps_par pool emitting from many workers. Formatting
        // under the lock is deliberate — the journal is a telemetry
        // path, not a hot path, and ordering is worth more here than
        // emitter concurrency.
        let mut sink = self.sink.lock().expect("journal sink poisoned");
        if sink.is_noop() {
            return; // sink swapped to Noop after the enabled() check
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(96 + 24 * fields.len());
        line.push_str("{\"seq\":");
        line.push_str(&seq.to_string());
        line.push_str(",\"t_us\":");
        line.push_str(&t_us.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(level.as_str());
        line.push_str("\",\"component\":");
        write_escaped(component, &mut line);
        line.push_str(",\"event\":");
        write_escaped(event, &mut line);
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_escaped(k, &mut line);
            line.push(':');
            v.write(&mut line);
        }
        line.push_str("}}\n");
        match &mut *sink {
            Sink::Noop => unreachable!("checked above"),
            Sink::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = err.write_all(line.as_bytes());
            }
            Sink::File(w) => {
                let _ = w.write_all(line.as_bytes());
                let _ = w.flush();
            }
        }
    }

    /// [`Level::Debug`] convenience wrapper around [`Journal::emit`].
    pub fn debug(&self, component: &str, event: &str, fields: &[(&str, FieldValue)]) {
        self.emit(Level::Debug, component, event, fields);
    }

    /// [`Level::Info`] convenience wrapper around [`Journal::emit`].
    pub fn info(&self, component: &str, event: &str, fields: &[(&str, FieldValue)]) {
        self.emit(Level::Info, component, event, fields);
    }

    /// [`Level::Warn`] convenience wrapper around [`Journal::emit`].
    pub fn warn(&self, component: &str, event: &str, fields: &[(&str, FieldValue)]) {
        self.emit(Level::Warn, component, event, fields);
    }

    /// [`Level::Error`] convenience wrapper around [`Journal::emit`].
    pub fn error(&self, component: &str, event: &str, fields: &[(&str, FieldValue)]) {
        self.emit(Level::Error, component, event, fields);
    }
}

/// One parsed journal line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Emission sequence number.
    pub seq: u64,
    /// Microseconds since journal creation (the timing field).
    pub t_us: u64,
    /// Severity.
    pub level: Level,
    /// Component target.
    pub component: String,
    /// Event name.
    pub event: String,
    /// Field pairs in emission order.
    pub fields: Vec<(String, Json)>,
}

impl ParsedEvent {
    /// Re-serializes without the timing field — two same-seed runs must
    /// produce identical canonical lines.
    pub fn canonical_line(&self) -> String {
        let mut line = String::new();
        line.push_str("{\"seq\":");
        line.push_str(&self.seq.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(self.level.as_str());
        line.push_str("\",\"component\":");
        write_escaped(&self.component, &mut line);
        line.push_str(",\"event\":");
        write_escaped(&self.event, &mut line);
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_escaped(k, &mut line);
            line.push(':');
            line.push_str(&v.to_compact());
        }
        line.push_str("}}");
        line
    }
}

/// Parses an NDJSON journal into events, verifying each line's shape.
pub fn parse_ndjson(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| format!("line {}: missing key '{key}'", lineno + 1))
        };
        let level_str = field("level")?
            .as_str()
            .ok_or_else(|| format!("line {}: level not a string", lineno + 1))?;
        let fields = match field("fields")? {
            Json::Obj(pairs) => pairs.clone(),
            _ => return Err(format!("line {}: fields not an object", lineno + 1)),
        };
        events.push(ParsedEvent {
            seq: field("seq")?
                .as_u64()
                .ok_or_else(|| format!("line {}: bad seq", lineno + 1))?,
            t_us: field("t_us")?
                .as_u64()
                .ok_or_else(|| format!("line {}: bad t_us", lineno + 1))?,
            level: Level::parse(level_str)
                .ok_or_else(|| format!("line {}: bad level '{level_str}'", lineno + 1))?,
            component: field("component")?
                .as_str()
                .ok_or_else(|| format!("line {}: component not a string", lineno + 1))?
                .to_string(),
            event: field("event")?
                .as_str()
                .ok_or_else(|| format!("line {}: event not a string", lineno + 1))?
                .to_string(),
            fields,
        });
    }
    Ok(events)
}

/// Removes the `"t_us":N,` timing field from one journal line, leaving the
/// deterministic remainder — the byte-comparison form for same-seed runs.
pub fn strip_timing_line(line: &str) -> String {
    match line.find(",\"t_us\":") {
        Some(start) => {
            let rest = &line[start + 8..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            format!("{}{}", &line[..start], &rest[end..])
        }
        None => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_writes_nothing_and_costs_nothing() {
        let j = Journal::noop();
        assert!(!j.enabled(Level::Error));
        j.error("x", "boom", &[("k", FieldValue::U64(1))]);
        assert_eq!(j.events_written(), 0);
    }

    #[test]
    fn level_filtering() {
        let dir = std::env::temp_dir().join(format!("gps_obs_lvl_{}", std::process::id()));
        let path = dir.join("j.ndjson");
        let j = Journal::file(&path, Level::Warn).unwrap();
        assert!(!j.enabled(Level::Info));
        j.info("c", "skipped", &[]);
        j.warn("c", "kept", &[]);
        drop(j);
        let events = parse_ndjson(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, "kept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_roundtrip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("gps_obs_rt_{}", std::process::id()));
        let path = dir.join("j.ndjson");
        let j = Journal::file(&path, Level::Debug).unwrap();
        j.info(
            "sim.runner",
            "run_start",
            &[
                ("seed", FieldValue::U64(42)),
                ("rho", FieldValue::F64(0.25)),
                ("label", FieldValue::Str("set \"1\"")),
                ("quiet", FieldValue::Bool(false)),
                ("delta", FieldValue::I64(-3)),
            ],
        );
        j.debug("ebb", "xi_opt", &[("xi", FieldValue::F64(1.5))]);
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let events = parse_ndjson(&text).unwrap();
        assert_eq!(events.len(), 2);
        let e = &events[0];
        assert_eq!(e.seq, 0);
        assert_eq!(e.level, Level::Info);
        assert_eq!(e.component, "sim.runner");
        assert_eq!(e.event, "run_start");
        assert_eq!(e.fields[0], ("seed".to_string(), Json::U64(42)));
        assert_eq!(e.fields[1], ("rho".to_string(), Json::F64(0.25)));
        assert_eq!(
            e.fields[2],
            ("label".to_string(), Json::Str("set \"1\"".into()))
        );
        assert_eq!(e.fields[3], ("quiet".to_string(), Json::Bool(false)));
        assert_eq!(e.fields[4], ("delta".to_string(), Json::I64(-3)));
        assert_eq!(events[1].seq, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strip_timing_makes_lines_deterministic() {
        let a = "{\"seq\":0,\"t_us\":123,\"level\":\"info\",\"component\":\"c\",\"event\":\"e\",\"fields\":{}}";
        let b = "{\"seq\":0,\"t_us\":99999,\"level\":\"info\",\"component\":\"c\",\"event\":\"e\",\"fields\":{}}";
        assert_eq!(strip_timing_line(a), strip_timing_line(b));
        assert!(!strip_timing_line(a).contains("t_us"));
        // Lines without the field pass through untouched.
        assert_eq!(strip_timing_line("{\"a\":1}"), "{\"a\":1}");
    }

    #[test]
    fn canonical_lines_equal_across_runs() {
        let emit = |path: &Path| {
            let j = Journal::file(path, Level::Info).unwrap();
            j.info("c", "e", &[("n", FieldValue::U64(7))]);
            j.info("c", "f", &[("x", FieldValue::F64(0.5))]);
        };
        let dir = std::env::temp_dir().join(format!("gps_obs_canon_{}", std::process::id()));
        let (p1, p2) = (dir.join("a.ndjson"), dir.join("b.ndjson"));
        emit(&p1);
        emit(&p2);
        let canon = |p: &Path| -> Vec<String> {
            parse_ndjson(&std::fs::read_to_string(p).unwrap())
                .unwrap()
                .iter()
                .map(|e| e.canonical_line())
                .collect()
        };
        assert_eq!(canon(&p1), canon(&p2));
        // And the raw stripped text is byte-identical too.
        let strip = |p: &Path| -> String {
            std::fs::read_to_string(p)
                .unwrap()
                .lines()
                .map(strip_timing_line)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&p1), strip(&p2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
            assert_eq!(Level::from_u8(l as u8), l);
        }
        assert_eq!(Level::parse("trace"), None);
        assert!(Level::Debug < Level::Error);
    }

    #[test]
    fn sink_swap_redirects_and_keeps_seq() {
        let dir = std::env::temp_dir().join(format!("gps_obs_swap_{}", std::process::id()));
        let (p1, p2) = (dir.join("a.ndjson"), dir.join("b.ndjson"));
        let j = Journal::file(&p1, Level::Info).unwrap();
        j.info("c", "first", &[]);
        j.reconfigure(&SinkKind::File(p2.clone()), Level::Info)
            .unwrap();
        j.info("c", "second", &[]);
        j.reconfigure(&SinkKind::Noop, Level::Info).unwrap();
        assert!(!j.enabled(Level::Error));
        j.info("c", "dropped", &[]);
        let a = parse_ndjson(&std::fs::read_to_string(&p1).unwrap()).unwrap();
        let b = parse_ndjson(&std::fs::read_to_string(&p2).unwrap()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].seq, 0);
        assert_eq!(b[0].seq, 1); // counter carries across the swap
        assert_eq!(j.events_written(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: NDJSON line-atomicity under concurrent emitters. Four
    /// threads hammer one file journal; every line must parse, and the
    /// seq stream must be exactly 0..N in file order (assigned under the
    /// sink lock).
    #[test]
    fn concurrent_emitters_never_interleave_lines() {
        const THREADS: usize = 4;
        const EVENTS_EACH: usize = 500;
        let dir = std::env::temp_dir().join(format!("gps_obs_stress_{}", std::process::id()));
        let path = dir.join("stress.ndjson");
        let j = Journal::file(&path, Level::Debug).unwrap();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let j = &j;
                scope.spawn(move || {
                    for k in 0..EVENTS_EACH {
                        j.info(
                            "stress",
                            "tick",
                            &[
                                ("thread", (t as u64).into()),
                                ("k", (k as u64).into()),
                                ("payload", "abcdefghijklmnopqrstuvwxyz0123456789".into()),
                            ],
                        );
                    }
                });
            }
        });
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let events = parse_ndjson(&text).expect("every line parses");
        assert_eq!(events.len(), THREADS * EVENTS_EACH);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "seq dense and in file order");
            assert_eq!(e.event, "tick");
            assert_eq!(e.fields.len(), 3);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
