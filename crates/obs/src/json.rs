//! Minimal JSON support for the observability layer: a value tree, a
//! deterministic writer, and a recursive-descent parser.
//!
//! The workspace's hermetic-build policy forbids external crates, so the
//! journal and metrics snapshots hand-roll their JSON. This module keeps
//! that in one audited place. Design points:
//!
//! * **Deterministic output** — objects preserve insertion order (the
//!   emitters insert in sorted or fixed order), floats render through
//!   Rust's shortest-roundtrip `Display`, so identical data produces
//!   byte-identical text. That is what makes "same seed ⇒ same journal"
//!   checkable with `diff`.
//! * **Integers stay integers** — `u64`/`i64` are kept apart from `f64`
//!   so counters never pick up a trailing `.0` or lose precision at 2^53.
//! * The parser accepts exactly the JSON this crate emits (plus ordinary
//!   RFC-8259 documents); it exists so journal round-trip tests and
//!   downstream tooling need no external dependency either.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, sequence numbers, counts).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered pairs (emitters control the order).
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// The value under `key`, when `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `u64`, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from a sorted map (deterministic key order).
    pub fn from_sorted<V: Into<Json>>(map: BTreeMap<String, V>) -> Json {
        Json::Obj(map.into_iter().map(|(k, v)| (k, v.into())).collect())
    }

    /// Serializes to compact single-line JSON.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*v, &mut buf));
            }
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

/// Renders an `f64` as JSON: shortest-roundtrip decimal, with non-finite
/// values (invalid JSON numbers) mapped to `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    // `Display` may yield integral text ("3") — keep it; JSON numbers need
    // no fractional part.
    s
}

/// Appends the JSON string literal for `s` (quotes included).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Trailing whitespace is permitted; trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this crate's
                            // emitter; accept lone BMP scalars only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: back up and take
                    // the full scalar.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number '{text}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(3)),
            ("b".into(), Json::Arr(vec![Json::F64(1.5), Json::Null])),
            ("s".into(), Json::Str("x\"y\n".into())),
            ("neg".into(), Json::I64(-7)),
            ("t".into(), Json::Bool(true)),
        ]);
        let text = v.to_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_stay_integral() {
        let text = "{\"n\":18446744073709551615,\"i\":-3}";
        let v = parse(text).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("i"), Some(&Json::I64(-3)));
        assert_eq!(v.to_compact(), text);
    }

    #[test]
    fn floats_roundtrip_shortest() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 2.5e17, -0.0] {
            let text = Json::F64(x).to_compact();
            match parse(&text).unwrap() {
                Json::F64(y) => assert_eq!(x, y, "text {text}"),
                // Integral Display (e.g. 2.5e17 -> "250000000000000000").
                other => assert_eq!(other.as_f64(), Some(x), "text {text}"),
            }
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::U64(1),
                Json::Obj(vec![("b".into(), Json::Null)])
            ])
        );
    }

    #[test]
    fn unicode_escapes_and_raw() {
        let v = parse("\"caf\\u00e9 ☕\"").unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse("{\"x\":2.5,\"y\":\"s\"}").unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("y").unwrap().as_str(), Some("s"));
        assert!(v.get("z").is_none());
        assert!(v.get("x").unwrap().as_str().is_none());
    }
}
