//! The metrics registry: counters, gauges, histograms, and quantile
//! summaries, snapshotted to deterministic JSON.
//!
//! Recording is built for hot paths: a [`Counter`] or [`Gauge`] handle is
//! one `Arc<AtomicU64>`, so after registration an update is a single
//! atomic op with no lock and no lookup. Registration (name → handle) goes
//! through a mutex-guarded `BTreeMap` and is expected once per metric, not
//! per observation.
//!
//! Aggregation math is deliberately *not* reimplemented here: histograms
//! are [`gps_stats::Histogram`] (fixed-width bins + under/overflow) and
//! summaries combine [`gps_stats::StreamingMoments`] with three
//! [`gps_stats::P2Quantile`] estimators (p50/p90/p99).
//!
//! Snapshots render with sorted metric names and fixed key order, so a
//! seeded run produces a byte-identical `*_metrics.json` every time; the
//! only nondeterministic section is `"spans"` (wall-clock timing), which
//! consumers strip before comparing (see [`Snapshot::to_json_without_spans`]).

use crate::hdrhist::{HdrHandle, HdrHistogram, HdrSnapshot};
use crate::json::{fmt_f64, write_escaped};
use gps_stats::{Histogram, P2Quantile, StreamingMoments};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Builds the canonical labeled metric name: `name{k=v,k2=v2}`.
///
/// Keys/values must not contain `{`, `}`, `,`, or `=`; labels are emitted
/// in the order given, so callers should pass them pre-sorted when they
/// want cross-site consistency.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        debug_assert!(
            !k.contains(['{', '}', ',', '=']) && !v.contains(['{', '}', ',', '=']),
            "label parts must be free of {{}},= separators"
        );
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge handle (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-width histogram handle (mutex-guarded [`Histogram`]).
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one observation.
    pub fn observe(&self, x: f64) {
        self.0.lock().expect("histogram poisoned").push(x);
    }

    /// Runs `f` against the current histogram state.
    pub fn with<R>(&self, f: impl FnOnce(&Histogram) -> R) -> R {
        f(&self.0.lock().expect("histogram poisoned"))
    }
}

/// Streaming summary state: moments plus p50/p90/p99 estimators.
#[derive(Debug)]
pub struct SummaryState {
    /// Welford moments (count/mean/min/max).
    pub moments: StreamingMoments,
    /// P² quantile estimators for 0.5, 0.9, 0.99.
    pub quantiles: [P2Quantile; 3],
}

impl SummaryState {
    fn new() -> Self {
        Self {
            moments: StreamingMoments::new(),
            quantiles: [
                P2Quantile::new(0.5),
                P2Quantile::new(0.9),
                P2Quantile::new(0.99),
            ],
        }
    }
}

/// A quantile-summary handle.
#[derive(Debug, Clone)]
pub struct Summary(Arc<Mutex<SummaryState>>);

impl Summary {
    /// Records one observation.
    pub fn observe(&self, x: f64) {
        let mut s = self.0.lock().expect("summary poisoned");
        s.moments.push(x);
        for q in &mut s.quantiles {
            q.push(x);
        }
    }

    /// Runs `f` against the current summary state.
    pub fn with<R>(&self, f: impl FnOnce(&SummaryState) -> R) -> R {
        f(&self.0.lock().expect("summary poisoned"))
    }
}

/// Accumulated wall-clock statistics for one span label.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// Shortest span.
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean span duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramHandle>,
    hdr: BTreeMap<String, HdrHandle>,
    summaries: BTreeMap<String, Summary>,
    spans: BTreeMap<String, SpanStats>,
}

/// A registry of named metrics. Cloning shares the underlying storage.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.counters
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
            .clone()
    }

    /// Returns the histogram named `name`, creating it over `[lo, hi)`
    /// with `bins` buckets on first use (later calls ignore the shape).
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, bins: usize) -> HistogramHandle {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramHandle(Arc::new(Mutex::new(Histogram::new(lo, hi, bins)))))
            .clone()
    }

    /// Returns the log-bucketed (HDR-style) histogram named `name`,
    /// creating it with the default configuration on first use — the
    /// instrument for latency-like quantities spanning many orders of
    /// magnitude (see [`crate::hdrhist`]).
    pub fn hdr(&self, name: &str) -> HdrHandle {
        self.hdr_with(name, HdrHistogram::new)
    }

    /// Like [`hdr`](Self::hdr) with an explicit first-use constructor
    /// (later calls ignore the shape, mirroring [`histogram`](Self::histogram)).
    pub fn hdr_with(&self, name: &str, build: impl FnOnce() -> HdrHistogram) -> HdrHandle {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.hdr
            .entry(name.to_string())
            .or_insert_with(|| HdrHandle::new(build()))
            .clone()
    }

    /// Returns the quantile summary named `name`, creating it on first use.
    pub fn summary(&self, name: &str) -> Summary {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.summaries
            .entry(name.to_string())
            .or_insert_with(|| Summary(Arc::new(Mutex::new(SummaryState::new()))))
            .clone()
    }

    /// Folds one completed span duration into the stats for `path`.
    pub fn record_span(&self, path: &str, ns: u64) {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.spans.entry(path.to_string()).or_default().record(ns);
    }

    /// Accumulated stats for span `path`, if any completed.
    pub fn span_stats(&self, path: &str) -> Option<SpanStats> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .spans
            .get(path)
            .copied()
    }

    /// Clears every metric back to its initial state. Outstanding handles
    /// stay valid (counters/gauges are zeroed in place); histogram shapes
    /// are preserved with counts reset.
    pub fn reset(&self) {
        let mut g = self.inner.lock().expect("registry poisoned");
        for c in g.counters.values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for v in g.gauges.values() {
            v.0.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        for h in g.histograms.values() {
            let mut hist = h.0.lock().expect("histogram poisoned");
            let fresh = {
                let lo = hist.bin_range(0).0;
                let hi = hist.bin_range(hist.num_bins() - 1).1;
                Histogram::new(lo, hi, hist.num_bins())
            };
            *hist = fresh;
        }
        for h in g.hdr.values() {
            h.clear();
        }
        for s in g.summaries.values() {
            *s.0.lock().expect("summary poisoned") = SummaryState::new();
        }
        g.spans.clear();
    }

    /// Takes a point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock().expect("registry poisoned");
        Snapshot {
            counters: g
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.with(|h| HistogramSnapshot::from(h))))
                .collect(),
            hdr: g
                .hdr
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            summaries: g
                .summaries
                .iter()
                .map(|(k, v)| (k.clone(), v.with(|s| SummarySnapshot::from(s))))
                .collect(),
            spans: g.spans.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        }
    }
}

/// A frozen histogram: shape, counts, and derived quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Lower edge of the binned range.
    pub lo: f64,
    /// Upper edge of the binned range.
    pub hi: f64,
    /// Per-bin counts.
    pub bins: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
    /// Total observations including under/overflow.
    pub total: u64,
}

impl From<&Histogram> for HistogramSnapshot {
    fn from(h: &Histogram) -> Self {
        HistogramSnapshot {
            lo: h.bin_range(0).0,
            hi: h.bin_range(h.num_bins() - 1).1,
            bins: (0..h.num_bins()).map(|i| h.count(i)).collect(),
            underflow: h.underflow(),
            overflow: h.overflow(),
            total: h.total(),
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0 < q < 1`) interpolated from binned counts,
    /// treating each bin's mass as uniform over its range. Under/overflow
    /// mass clamps to the respective edge. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c as f64;
            if target <= next && c > 0 {
                let frac = (target - acc) / c as f64;
                return Some(self.lo + w * (i as f64 + frac));
            }
            acc = next;
        }
        Some(self.hi)
    }
}

/// A frozen quantile summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySnapshot {
    /// Observation count.
    pub count: u64,
    /// Mean of observations.
    pub mean: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Estimated p50/p90/p99 (`None` when empty).
    pub p50: Option<f64>,
    /// Estimated p90.
    pub p90: Option<f64>,
    /// Estimated p99.
    pub p99: Option<f64>,
}

impl From<&SummaryState> for SummarySnapshot {
    fn from(s: &SummaryState) -> Self {
        SummarySnapshot {
            count: s.moments.count(),
            mean: s.moments.mean(),
            min: s.moments.min(),
            max: s.moments.max(),
            p50: s.quantiles[0].estimate(),
            p90: s.quantiles[1].estimate(),
            p99: s.quantiles[2].estimate(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], renderable as deterministic
/// JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// HDR (log-bucketed) histogram snapshots by name.
    pub hdr: Vec<(String, HdrSnapshot)>,
    /// Summary snapshots by name.
    pub summaries: Vec<(String, SummarySnapshot)>,
    /// Span timing stats by hierarchical path (wall-clock; nondeterministic).
    pub spans: Vec<(String, SpanStats)>,
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) => fmt_f64(x),
        None => "null".to_string(),
    }
}

impl Snapshot {
    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.hdr.is_empty()
            && self.summaries.is_empty()
            && self.spans.is_empty()
    }

    /// Renders the full snapshot, spans included.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// Renders only the deterministic sections — the byte-comparison form
    /// for same-seed runs.
    pub fn to_json_without_spans(&self) -> String {
        self.render(false)
    }

    /// Renders just the `"spans"` object body (for embedding in other
    /// reports, e.g. the bench harness JSON).
    pub fn spans_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(name, &mut out);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                fmt_f64(s.mean_ns()),
            ));
        }
        out.push('}');
        out
    }

    fn render(&self, with_spans: bool) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_escaped(name, &mut out);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_escaped(name, &mut out);
            out.push_str(&format!(": {}", fmt_f64(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_escaped(name, &mut out);
            let bins: Vec<String> = h.bins.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                ": {{\"lo\": {}, \"hi\": {}, \"bins\": [{}], \"underflow\": {}, \
                 \"overflow\": {}, \"total\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                fmt_f64(h.lo),
                fmt_f64(h.hi),
                bins.join(","),
                h.underflow,
                h.overflow,
                h.total,
                opt_f64(h.quantile(0.5)),
                opt_f64(h.quantile(0.9)),
                opt_f64(h.quantile(0.99)),
            ));
        }
        // The HDR section appears only when an HDR histogram was
        // registered: pre-existing snapshots keep their exact bytes.
        if !self.hdr.is_empty() {
            out.push_str("\n  },\n  \"hdr_histograms\": {");
            for (i, (name, h)) in self.hdr.iter().enumerate() {
                out.push_str(if i > 0 { ",\n    " } else { "\n    " });
                write_escaped(name, &mut out);
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(le, c)| format!("[{le},{c}]"))
                    .collect();
                let q = |p: f64| match h.value_at_quantile(p) {
                    Some(v) => v.to_string(),
                    None => "null".to_string(),
                };
                out.push_str(&format!(
                    ": {{\"sub_bits\": {}, \"max_trackable\": {}, \"count\": {}, \
                     \"sum\": {}, \"min\": {}, \"max\": {}, \"saturated\": {}, \
                     \"buckets\": [{}], \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                    h.sub_bits,
                    h.max_trackable,
                    h.total,
                    h.sum,
                    h.min,
                    h.max,
                    h.saturated,
                    buckets.join(","),
                    q(0.5),
                    q(0.9),
                    q(0.99),
                    q(0.999),
                ));
            }
        }
        out.push_str("\n  },\n  \"summaries\": {");
        for (i, (name, s)) in self.summaries.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_escaped(name, &mut out);
            out.push_str(&format!(
                ": {{\"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                s.count,
                fmt_f64(s.mean),
                fmt_f64(s.min),
                fmt_f64(s.max),
                opt_f64(s.p50),
                opt_f64(s.p90),
                opt_f64(s.p99),
            ));
        }
        out.push_str("\n  }");
        if with_spans {
            out.push_str(",\n  \"spans\": ");
            out.push_str(&self.spans_json());
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_storage() {
        let r = Registry::new();
        let c1 = r.counter("hits");
        let c2 = r.counter("hits");
        c1.inc();
        c2.add(4);
        assert_eq!(r.counter("hits").get(), 5);
        let g = r.gauge("load");
        g.set(0.75);
        assert_eq!(r.gauge("load").get(), 0.75);
    }

    #[test]
    fn labeled_names() {
        assert_eq!(labeled("x", &[]), "x");
        assert_eq!(
            labeled("faults.drops", &[("session", "2"), ("node", "a")]),
            "faults.drops{session=2,node=a}"
        );
    }

    #[test]
    fn histogram_quantiles_from_bins() {
        let r = Registry::new();
        let h = r.histogram("lat", 0.0, 10.0, 10);
        for i in 0..100 {
            h.observe(i as f64 / 10.0); // uniform on [0, 10)
        }
        let snap = r.snapshot();
        let hs = &snap.histograms[0].1;
        assert_eq!(hs.total, 100);
        let p50 = hs.quantile(0.5).unwrap();
        assert!((p50 - 5.0).abs() < 0.6, "p50 {p50}");
        let p99 = hs.quantile(0.99).unwrap();
        assert!(p99 > 9.0, "p99 {p99}");
    }

    #[test]
    fn summary_tracks_quantiles() {
        let r = Registry::new();
        let s = r.summary("delay");
        for i in 1..=1000 {
            s.observe(i as f64);
        }
        let snap = r.snapshot();
        let ss = &snap.summaries[0].1;
        assert_eq!(ss.count, 1000);
        assert_eq!(ss.min, 1.0);
        assert_eq!(ss.max, 1000.0);
        assert!((ss.mean - 500.5).abs() < 1e-9);
        assert!((ss.p50.unwrap() - 500.0).abs() < 25.0);
        assert!((ss.p99.unwrap() - 990.0).abs() < 25.0);
    }

    #[test]
    fn span_stats_accumulate() {
        let r = Registry::new();
        r.record_span("a/b", 100);
        r.record_span("a/b", 300);
        let s = r.span_stats("a/b").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 400);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert_eq!(s.mean_ns(), 200.0);
        assert!(r.span_stats("missing").is_none());
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let build = || {
            let r = Registry::new();
            r.counter("z.last").add(2);
            r.counter("a.first").add(1);
            r.gauge("mid").set(1.5);
            r.summary("s").observe(3.0);
            r.histogram("h", 0.0, 1.0, 2).observe(0.3);
            r.record_span("timed", 123); // wall clock — excluded below
            r.snapshot()
        };
        let (s1, s2) = (build(), build());
        assert_eq!(s1.to_json_without_spans(), s2.to_json_without_spans());
        let json = s1.to_json();
        // Sorted counter order and span presence in the full render.
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z);
        assert!(json.contains("\"spans\""));
        assert!(!s1.to_json_without_spans().contains("\"spans\""));
        // Both renders parse as JSON.
        assert!(crate::json::parse(&json).is_ok());
        assert!(crate::json::parse(&s1.to_json_without_spans()).is_ok());
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("n");
        c.add(5);
        let h = r.histogram("h", 0.0, 4.0, 4);
        h.observe(1.0);
        r.record_span("sp", 10);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(r.snapshot().histograms[0].1.total, 0);
        assert!(r.span_stats("sp").is_none());
        c.inc(); // handle still live
        assert_eq!(r.counter("n").get(), 1);
    }

    fn histogram_by_name(r: &Registry, name: &str) -> HistogramSnapshot {
        r.snapshot()
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.clone())
            .expect("histogram present")
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        let r = Registry::new();
        // Empty: no quantile at all.
        let h = r.histogram("empty", 0.0, 1.0, 4);
        let hs = histogram_by_name(&r, "empty");
        assert_eq!(hs.total, 0);
        assert_eq!(hs.quantile(0.5), None);
        // Single sample: every quantile lands in its bin.
        h.observe(0.3); // bin 1 of [0,1) with 4 bins
        let hs = histogram_by_name(&r, "empty");
        for q in [0.01, 0.5, 0.99] {
            let v = hs.quantile(q).unwrap();
            assert!((0.25..=0.5).contains(&v), "q={q} -> {v}");
        }
        // All-underflow mass clamps to the lower edge.
        let u = r.histogram("under", 0.0, 1.0, 4);
        u.observe(-5.0);
        u.observe(-2.0);
        let us = histogram_by_name(&r, "under");
        assert_eq!(us.quantile(0.5), Some(0.0));
        // All-overflow mass clamps to the upper edge.
        let o = r.histogram("over", 0.0, 1.0, 4);
        o.observe(7.0);
        let os = histogram_by_name(&r, "over");
        assert_eq!(os.quantile(0.99), Some(1.0));
        // q outside (0,1) is a caller bug.
        let panics = |q: f64| {
            let hs = hs.clone();
            std::panic::catch_unwind(move || hs.quantile(q)).is_err()
        };
        assert!(panics(0.0));
        assert!(panics(1.0));
    }

    #[test]
    fn histogram_quantile_interpolates_within_bins() {
        let r = Registry::new();
        let h = r.histogram("h", 0.0, 10.0, 10);
        // 10 samples in bin 0, 10 in bin 9: p25 sits mid-bin-0, p75
        // mid-bin-9, p50 at the boundary mass split.
        for _ in 0..10 {
            h.observe(0.5);
            h.observe(9.5);
        }
        let hs = r.snapshot().histograms[0].1.clone();
        assert!((hs.quantile(0.25).unwrap() - 0.5).abs() < 1e-12);
        assert!((hs.quantile(0.75).unwrap() - 9.5).abs() < 1e-12);
        // Near-p0 / near-p100 stay inside the data range.
        assert!(hs.quantile(0.001).unwrap() >= 0.0);
        assert!(hs.quantile(0.999).unwrap() <= 10.0);
    }

    fn summary_by_name(r: &Registry, name: &str) -> SummarySnapshot {
        r.snapshot()
            .summaries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.clone())
            .expect("summary present")
    }

    #[test]
    fn summary_quantile_edge_cases() {
        let r = Registry::new();
        // Empty summary: no estimates, moments at their identities.
        let s = r.summary("s");
        let ss = summary_by_name(&r, "s");
        assert_eq!(ss.count, 0);
        assert_eq!(ss.p50, None);
        assert_eq!(ss.p90, None);
        assert_eq!(ss.p99, None);
        // Single sample: every estimator that reports must report it.
        s.observe(4.25);
        let ss = summary_by_name(&r, "s");
        assert_eq!(ss.count, 1);
        assert_eq!(ss.min, 4.25);
        assert_eq!(ss.max, 4.25);
        for q in [ss.p50, ss.p90, ss.p99].into_iter().flatten() {
            assert_eq!(q, 4.25);
        }
        // All-equal samples: the P² markers cannot spread.
        let e = r.summary("eq");
        for _ in 0..50 {
            e.observe(7.0);
        }
        let es = summary_by_name(&r, "eq");
        assert_eq!(es.count, 50);
        assert_eq!(es.p50, Some(7.0));
        assert_eq!(es.p90, Some(7.0));
        assert_eq!(es.p99, Some(7.0));
        assert_eq!(es.min, 7.0);
        assert_eq!(es.max, 7.0);
    }

    #[test]
    fn hdr_histograms_register_reset_and_render() {
        let r = Registry::new();
        let h = r.hdr("lat");
        h.observe(460);
        h.observe(40_000_000);
        r.hdr("lat").observe(460); // same handle by name
        let snap = r.snapshot();
        assert_eq!(snap.hdr.len(), 1);
        assert_eq!(snap.hdr[0].1.total, 3);
        let json = snap.to_json_without_spans();
        assert!(json.contains("\"hdr_histograms\""));
        assert!(json.contains("\"p999\""));
        assert!(crate::json::parse(&json).is_ok());
        // Absent entirely when no HDR histogram exists (byte-stability
        // of pre-existing snapshots).
        let plain = Registry::new();
        plain.counter("c").inc();
        assert!(!plain.snapshot().to_json().contains("hdr_histograms"));
        // Reset zeroes data but keeps the instrument and configuration.
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.hdr[0].1.total, 0);
        h.observe(7);
        assert_eq!(r.snapshot().hdr[0].1.total, 1);
    }

    #[test]
    fn empty_snapshot() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert!(crate::json::parse(&snap.to_json()).is_ok());
    }
}
