//! Declarative service-level objectives with multi-window burn-rate
//! evaluation.
//!
//! An [`SloSpec`] is the operational mirror of a per-class (delay, ε)
//! E.B.B. certificate: where Theorem 10 certifies
//! `P(delay > d) <= eps` for the *queue*, an SLO states "fraction of
//! good requests ≥ objective" for the *service*, and the error budget
//! `1 - objective` plays the role of ε. Following SRE practice, each
//! SLO is evaluated over two rolling windows — a fast window that
//! catches sharp regressions quickly and a slow window that catches
//! smouldering ones — and an alert (a warn journal event plus
//! `obs.slo.*` counters) fires only when the *burn rate* (observed
//! bad fraction divided by the budget) exceeds the window's threshold.
//!
//! Trackers are driven by the exporter's request-telemetry middleware
//! (see [`crate::exporter::TelemetryConfig`]); recording is O(1) per
//! request and the per-second ring holds one slow window of history.
//! Everything here is deterministic given the same sequence of
//! `(second, good)` observations — wall-clock enters only through the
//! caller's choice of `now_s`.

use crate::journal::FieldValue;
use crate::metrics::Registry;

/// Default fast alerting window: 5 minutes.
pub const DEFAULT_FAST_WINDOW_S: u64 = 300;
/// Default slow alerting window: 1 hour.
pub const DEFAULT_SLOW_WINDOW_S: u64 = 3_600;
/// Default fast-window burn-rate threshold (SRE workbook page-now tier).
pub const DEFAULT_FAST_BURN: f64 = 14.4;
/// Default slow-window burn-rate threshold (SRE workbook ticket tier).
pub const DEFAULT_SLOW_BURN: f64 = 6.0;

/// A JSON string literal (quotes included) for `s`.
fn quoted(s: &str) -> String {
    let mut out = String::new();
    crate::json::write_escaped(s, &mut out);
    out
}

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable identifier used in journal events, counters, and JSON.
    pub name: String,
    /// Restrict to one route (`None` = all routes).
    pub route: Option<String>,
    /// Target good fraction, e.g. `0.999`; the error budget is
    /// `1 - objective`.
    pub objective: f64,
    /// When set, a request must also finish within this latency to
    /// count as good (latency SLO); `None` = availability only.
    pub latency_threshold_ns: Option<u64>,
    /// Fast alerting window in seconds.
    pub fast_window_s: u64,
    /// Slow alerting window in seconds.
    pub slow_window_s: u64,
    /// Burn-rate threshold for the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold for the slow window.
    pub slow_burn: f64,
}

impl SloSpec {
    /// An availability SLO over all routes: a request is good when its
    /// status is below 500.
    pub fn availability(name: impl Into<String>, objective: f64) -> SloSpec {
        SloSpec {
            name: name.into(),
            route: None,
            objective,
            latency_threshold_ns: None,
            fast_window_s: DEFAULT_FAST_WINDOW_S,
            slow_window_s: DEFAULT_SLOW_WINDOW_S,
            fast_burn: DEFAULT_FAST_BURN,
            slow_burn: DEFAULT_SLOW_BURN,
        }
    }

    /// A latency SLO: a request is good when its status is below 500
    /// *and* it finished within `threshold_ns`.
    pub fn latency(name: impl Into<String>, objective: f64, threshold_ns: u64) -> SloSpec {
        let mut s = SloSpec::availability(name, objective);
        s.latency_threshold_ns = Some(threshold_ns);
        s
    }

    /// Restricts this SLO to requests on one route.
    pub fn for_route(mut self, route: impl Into<String>) -> SloSpec {
        self.route = Some(route.into());
        self
    }

    /// Overrides the alerting windows and burn thresholds.
    pub fn with_windows(
        mut self,
        fast_window_s: u64,
        fast_burn: f64,
        slow_window_s: u64,
        slow_burn: f64,
    ) -> SloSpec {
        assert!(fast_window_s > 0 && slow_window_s >= fast_window_s);
        self.fast_window_s = fast_window_s;
        self.slow_window_s = slow_window_s;
        self.fast_burn = fast_burn;
        self.slow_burn = slow_burn;
        self
    }

    /// Whether a request on `route` with `status` and `latency_ns`
    /// counts against this SLO, and if so whether it was good.
    pub fn classify(&self, route: &str, status: u16, latency_ns: u64) -> Option<bool> {
        if let Some(want) = &self.route {
            if want != route {
                return None;
            }
        }
        let mut good = status < 500;
        if let Some(t) = self.latency_threshold_ns {
            good = good && latency_ns <= t;
        }
        Some(good)
    }
}

/// One window's evaluated state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowState {
    /// Window length in seconds.
    pub seconds: u64,
    /// Good requests observed inside the window.
    pub good: u64,
    /// Bad requests observed inside the window.
    pub bad: u64,
    /// Observed bad fraction divided by the error budget (0 when the
    /// window is empty).
    pub burn_rate: f64,
    /// The alerting threshold this window compares against.
    pub threshold: f64,
    /// Whether the burn rate currently exceeds the threshold.
    pub breached: bool,
}

/// Evaluated status of one SLO, as served at `/slo`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec this status was evaluated from.
    pub spec: SloSpec,
    /// Lifetime good requests.
    pub good_total: u64,
    /// Lifetime bad requests.
    pub bad_total: u64,
    /// Fraction of the lifetime error budget still unspent (clamped to
    /// ≥ 0; 1 when nothing has been observed).
    pub budget_remaining: f64,
    /// Fast-window state.
    pub fast: WindowState,
    /// Slow-window state.
    pub slow: WindowState,
    /// Breach transitions seen so far (fast and slow combined).
    pub breaches: u64,
}

impl SloStatus {
    /// Renders this status as a JSON object (deterministic field
    /// order).
    pub fn to_json(&self) -> String {
        let window = |w: &WindowState| {
            format!(
                "{{\"seconds\":{},\"good\":{},\"bad\":{},\"burn_rate\":{},\"threshold\":{},\"breached\":{}}}",
                w.seconds,
                w.good,
                w.bad,
                crate::json::fmt_f64(w.burn_rate),
                crate::json::fmt_f64(w.threshold),
                w.breached
            )
        };
        let route = match &self.spec.route {
            Some(r) => quoted(r),
            None => "null".to_string(),
        };
        let latency = match self.spec.latency_threshold_ns {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\":{},\"route\":{},\"objective\":{},\"latency_threshold_ns\":{},\"good\":{},\"bad\":{},\"budget_remaining\":{},\"breaches\":{},\"fast\":{},\"slow\":{}}}",
            quoted(&self.spec.name),
            route,
            crate::json::fmt_f64(self.spec.objective),
            latency,
            self.good_total,
            self.bad_total,
            crate::json::fmt_f64(self.budget_remaining),
            self.breaches,
            window(&self.fast),
            window(&self.slow)
        )
    }
}

/// Rolling-window burn-rate tracker for one [`SloSpec`].
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    /// Per-second (good, bad) slots covering one slow window.
    ring: Vec<(u64, u64)>,
    /// The absolute second the cursor currently points at.
    cur_s: u64,
    started: bool,
    good_total: u64,
    bad_total: u64,
    fast_breached: bool,
    slow_breached: bool,
    breaches: u64,
}

impl SloTracker {
    /// A tracker with empty history.
    pub fn new(spec: SloSpec) -> SloTracker {
        assert!(
            spec.objective > 0.0 && spec.objective < 1.0,
            "objective must be in (0,1)"
        );
        let slots = spec.slow_window_s.max(spec.fast_window_s).max(1) as usize;
        SloTracker {
            spec,
            ring: vec![(0, 0); slots],
            cur_s: 0,
            started: false,
            good_total: 0,
            bad_total: 0,
            fast_breached: false,
            slow_breached: false,
            breaches: 0,
        }
    }

    /// The spec this tracker evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records one classified request at absolute second `now_s`.
    /// Returns the breach transitions this observation caused (fast,
    /// slow) — `Some(true)` entering breach, `Some(false)` leaving.
    pub fn record(&mut self, now_s: u64, good: bool) -> (Option<bool>, Option<bool>) {
        let transitions = self.advance_to(now_s);
        let slot = (now_s % self.ring.len() as u64) as usize;
        if good {
            self.ring[slot].0 += 1;
            self.good_total += 1;
        } else {
            self.ring[slot].1 += 1;
            self.bad_total += 1;
        }
        transitions
    }

    /// Moves the cursor to `now_s`, zeroing skipped slots, and
    /// re-evaluates breach state on each second boundary.
    fn advance_to(&mut self, now_s: u64) -> (Option<bool>, Option<bool>) {
        if !self.started {
            self.started = true;
            self.cur_s = now_s;
            return (None, None);
        }
        if now_s <= self.cur_s {
            return (None, None); // same second (or clock went backwards)
        }
        let len = self.ring.len() as u64;
        let steps = (now_s - self.cur_s).min(len);
        for k in 1..=steps {
            let slot = ((self.cur_s + k) % len) as usize;
            self.ring[slot] = (0, 0);
        }
        self.cur_s = now_s;
        self.evaluate_transitions(now_s)
    }

    /// Sums (good, bad) over the last `window_s` seconds ending at
    /// `now_s`.
    fn window_sums(&self, now_s: u64, window_s: u64) -> (u64, u64) {
        let len = self.ring.len() as u64;
        let span = window_s.min(len);
        let mut good = 0;
        let mut bad = 0;
        for k in 0..span {
            if k > now_s {
                break;
            }
            let (g, b) = self.ring[((now_s - k) % len) as usize];
            good += g;
            bad += b;
        }
        (good, bad)
    }

    fn window_state(&self, now_s: u64, window_s: u64, threshold: f64) -> WindowState {
        let (good, bad) = self.window_sums(now_s, window_s);
        let total = good + bad;
        let burn_rate = if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / (1.0 - self.spec.objective)
        };
        WindowState {
            seconds: window_s,
            good,
            bad,
            burn_rate,
            threshold,
            breached: burn_rate > threshold,
        }
    }

    fn evaluate_transitions(&mut self, now_s: u64) -> (Option<bool>, Option<bool>) {
        let fast = self
            .window_state(now_s, self.spec.fast_window_s, self.spec.fast_burn)
            .breached;
        let slow = self
            .window_state(now_s, self.spec.slow_window_s, self.spec.slow_burn)
            .breached;
        let fast_t = if fast != self.fast_breached {
            self.fast_breached = fast;
            if fast {
                self.breaches += 1;
            }
            Some(fast)
        } else {
            None
        };
        let slow_t = if slow != self.slow_breached {
            self.slow_breached = slow;
            if slow {
                self.breaches += 1;
            }
            Some(slow)
        } else {
            None
        };
        (fast_t, slow_t)
    }

    /// Evaluates both windows and the lifetime budget at `now_s`.
    pub fn status(&self, now_s: u64) -> SloStatus {
        let total = self.good_total + self.bad_total;
        let budget_remaining = if total == 0 {
            1.0
        } else {
            let budget = total as f64 * (1.0 - self.spec.objective);
            (1.0 - self.bad_total as f64 / budget).max(0.0)
        };
        SloStatus {
            spec: self.spec.clone(),
            good_total: self.good_total,
            bad_total: self.bad_total,
            budget_remaining,
            fast: self.window_state(now_s, self.spec.fast_window_s, self.spec.fast_burn),
            slow: self.window_state(now_s, self.spec.slow_window_s, self.spec.slow_burn),
            breaches: self.breaches,
        }
    }
}

/// A set of SLO trackers sharing one lock, as held by the exporter's
/// request-telemetry middleware.
#[derive(Debug)]
pub struct SloSet {
    trackers: std::sync::Mutex<Vec<SloTracker>>,
}

impl SloSet {
    /// Builds trackers for `specs`.
    pub fn new(specs: Vec<SloSpec>) -> SloSet {
        SloSet {
            trackers: std::sync::Mutex::new(specs.into_iter().map(SloTracker::new).collect()),
        }
    }

    /// Whether any SLOs are configured.
    pub fn is_empty(&self) -> bool {
        self.trackers.lock().expect("slo set poisoned").is_empty()
    }

    /// Routes one finished request to every matching tracker. Breach
    /// transitions raise warn journal events (through the global
    /// journal) and bump `obs.slo.*` counters in `registry`.
    pub fn record(
        &self,
        registry: &Registry,
        now_s: u64,
        route: &str,
        status: u16,
        latency_ns: u64,
    ) {
        let mut trackers = self.trackers.lock().expect("slo set poisoned");
        for t in trackers.iter_mut() {
            let Some(good) = t.spec.classify(route, status, latency_ns) else {
                continue;
            };
            let name = t.spec.name.clone();
            let (fast_t, slow_t) = t.record(now_s, good);
            registry
                .counter(&crate::metrics::labeled(
                    "obs.slo.requests",
                    &[
                        ("slo", name.as_str()),
                        ("good", if good { "true" } else { "false" }),
                    ],
                ))
                .inc();
            for (window, transition) in [("fast", fast_t), ("slow", slow_t)] {
                let Some(entered) = transition else { continue };
                if entered {
                    registry
                        .counter(&crate::metrics::labeled(
                            "obs.slo.breaches",
                            &[("slo", name.as_str()), ("window", window)],
                        ))
                        .inc();
                    crate::warn(
                        "obs.slo",
                        "burn_rate_breach",
                        &[
                            ("slo", FieldValue::from(name.as_str())),
                            ("window", FieldValue::from(window)),
                        ],
                    );
                } else {
                    crate::info(
                        "obs.slo",
                        "burn_rate_recovered",
                        &[
                            ("slo", FieldValue::from(name.as_str())),
                            ("window", FieldValue::from(window)),
                        ],
                    );
                }
            }
        }
    }

    /// Evaluated statuses for every SLO at `now_s`, in spec order.
    pub fn statuses(&self, now_s: u64) -> Vec<SloStatus> {
        self.trackers
            .lock()
            .expect("slo set poisoned")
            .iter()
            .map(|t| t.status(now_s))
            .collect()
    }

    /// Renders all statuses as the `/slo` JSON document.
    pub fn to_json(&self, service: &str, now_s: u64) -> String {
        let slos: Vec<String> = self
            .statuses(now_s)
            .iter()
            .map(SloStatus::to_json)
            .collect();
        format!(
            "{{\"service\":{},\"now_s\":{},\"slos\":[{}]}}\n",
            quoted(service),
            now_s,
            slos.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::availability("avail", 0.9).with_windows(5, 2.0, 20, 1.5)
    }

    #[test]
    fn classify_filters_route_and_latency() {
        let s = SloSpec::latency("lat", 0.99, 1_000).for_route("/admit");
        assert_eq!(s.classify("/depart", 200, 10), None);
        assert_eq!(s.classify("/admit", 200, 10), Some(true));
        assert_eq!(s.classify("/admit", 200, 5_000), Some(false));
        assert_eq!(s.classify("/admit", 500, 10), Some(false));
        let a = SloSpec::availability("a", 0.999);
        assert_eq!(a.classify("/anything", 404, 0), Some(true)); // 4xx is "available"
        assert_eq!(a.classify("/anything", 503, 0), Some(false));
    }

    #[test]
    fn burn_rate_and_budget_math() {
        let mut t = SloTracker::new(spec());
        // 90 good + 10 bad at second 0: bad fraction 0.1 = exactly the
        // budget, burn rate 1.0 in both windows.
        for _ in 0..90 {
            t.record(0, true);
        }
        for _ in 0..10 {
            t.record(0, false);
        }
        let st = t.status(0);
        assert!((st.fast.burn_rate - 1.0).abs() < 1e-12);
        assert!((st.slow.burn_rate - 1.0).abs() < 1e-12);
        assert!((st.budget_remaining - 0.0).abs() < 1e-12);
        assert!(!st.fast.breached && !st.slow.breached);
        assert_eq!((st.good_total, st.bad_total), (90, 10));
    }

    #[test]
    fn breach_fires_on_transition_only() {
        let mut t = SloTracker::new(spec());
        // Second 0: all bad — burn rate 1/0.1 = 10 ≫ both thresholds,
        // but transitions are evaluated on the next second boundary.
        for _ in 0..10 {
            assert_eq!(t.record(0, false), (None, None));
        }
        let (fast, slow) = t.record(1, false);
        assert_eq!((fast, slow), (Some(true), Some(true)));
        // Still breached: no repeated transition.
        assert_eq!(t.record(2, false), (None, None));
        assert_eq!(t.status(2).breaches, 2);
    }

    #[test]
    fn fast_window_recovers_before_slow() {
        let mut t = SloTracker::new(spec()); // fast 5 s, slow 20 s
        for _ in 0..10 {
            t.record(0, false);
        }
        // Transitions into breach on both windows.
        t.record(1, true);
        // 6 seconds later the bad burst has left the fast window but
        // still sits inside the slow one.
        let (fast, slow) = t.record(7, true);
        assert_eq!(fast, Some(false), "fast window should have recovered");
        assert_eq!(slow, None, "slow window should still be breached");
        let st = t.status(7);
        assert!(!st.fast.breached);
        assert!(st.slow.breached);
        // After the slow window drains too, it recovers as well.
        let (_, slow) = t.record(25, true);
        assert_eq!(slow, Some(false));
    }

    #[test]
    fn ring_wraps_without_resurrecting_old_slots() {
        let mut t = SloTracker::new(spec()); // ring of 20 slots
        for _ in 0..100 {
            t.record(3, false);
        }
        // Jump far beyond the ring: every slot must be zeroed, not
        // re-read as stale history.
        t.record(1_000, true);
        let st = t.status(1_000);
        assert_eq!((st.fast.good, st.fast.bad), (1, 0));
        assert_eq!((st.slow.good, st.slow.bad), (1, 0));
        assert_eq!(st.bad_total, 100, "lifetime totals keep the history");
    }

    #[test]
    fn slo_set_records_and_serves_json() {
        let registry = Registry::new();
        let set = SloSet::new(vec![
            SloSpec::availability("avail", 0.999),
            SloSpec::latency("admit-latency", 0.99, 1_000_000).for_route("/admit"),
        ]);
        set.record(&registry, 0, "/admit", 200, 500);
        set.record(&registry, 0, "/region", 200, 50);
        set.record(&registry, 0, "/admit", 200, 5_000_000);
        let json = set.to_json("svc", 0);
        assert!(json.starts_with("{\"service\":\"svc\",\"now_s\":0,\"slos\":["));
        assert!(json.contains("\"name\":\"avail\""));
        assert!(json.contains("\"name\":\"admit-latency\""));
        assert!(json.contains("\"budget_remaining\""));
        assert!(json.contains("\"burn_rate\""));
        // avail saw 3 requests (all good), the route-scoped latency SLO
        // saw 2 (one over threshold).
        let statuses = set.statuses(0);
        assert_eq!((statuses[0].good_total, statuses[0].bad_total), (3, 0));
        assert_eq!((statuses[1].good_total, statuses[1].bad_total), (1, 1));
        let snap = registry.snapshot();
        let find = |needle: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n.contains(needle))
                .map(|(_, v)| *v)
        };
        assert_eq!(find("slo=avail,good=true"), Some(3));
        assert_eq!(find("slo=admit-latency,good=false"), Some(1));
    }

    #[test]
    fn statuses_are_deterministic_in_spec_order() {
        let set = SloSet::new(vec![
            SloSpec::availability("b", 0.99),
            SloSpec::availability("a", 0.999),
        ]);
        let names: Vec<String> = set
            .statuses(0)
            .iter()
            .map(|s| s.spec.name.clone())
            .collect();
        assert_eq!(names, vec!["b", "a"], "spec order, not sorted");
    }
}
