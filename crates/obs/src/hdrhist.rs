//! Log-bucketed (HDR-style) latency histograms over integer nanoseconds.
//!
//! The fixed-width linear [`gps_stats::Histogram`] behind
//! [`crate::metrics::Registry::histogram`] is the right tool for
//! simulation quantities with a known range, but it cannot resolve a
//! 460 ns cache hit and a 40 ms stall in one instrument: any linear
//! binning wide enough for the stall is five orders of magnitude too
//! coarse for the hit. [`HdrHistogram`] keeps *relative* resolution
//! instead — bucket width grows with magnitude, like the classic
//! HdrHistogram — so one instrument spans nanoseconds to minutes with a
//! bounded worst-case quantile error.
//!
//! Layout (all derived from two integers, so bucket boundaries are a
//! deterministic pure function of the configuration):
//!
//! * values below `2^sub_bits` get exact unit-width buckets;
//! * above that, each power-of-two octave is split into
//!   `2^(sub_bits-1)` equal sub-buckets, giving a worst-case relative
//!   error of `2^-(sub_bits-1)` (6.25 % at the default `sub_bits = 5`);
//! * values above `max_trackable` are clamped into the top bucket and
//!   counted in `saturated` — recording never fails and never drops.
//!
//! Two histograms built with the same configuration have identical
//! boundaries, which is what makes [`HdrHistogram::merge`] exact:
//! per-thread instances can be folded into one without re-binning, and
//! the merged quantiles equal the quantiles of the combined stream (to
//! within bucket resolution). Quantile queries return the highest value
//! equivalent to the bucket the rank lands in, mirroring the cumulative
//! `le` semantics of the Prometheus exposition in
//! [`crate::exporter::to_prometheus_text`].

use std::sync::{Arc, Mutex};

/// Default sub-bucket precision: 32 unit buckets, then 16 sub-buckets
/// per octave (≤ 6.25 % relative error).
pub const DEFAULT_SUB_BITS: u32 = 5;

/// Default saturation point: 60 s in nanoseconds — far beyond any
/// request the exporter's 2 s socket timeouts would let live.
pub const DEFAULT_MAX_NS: u64 = 60_000_000_000;

/// A log-bucketed histogram of `u64` observations (nanoseconds by
/// convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdrHistogram {
    sub_bits: u32,
    max_trackable: u64,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min_seen: u64,
    max_seen: u64,
    saturated: u64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// A histogram with the default precision and range
    /// ([`DEFAULT_SUB_BITS`], [`DEFAULT_MAX_NS`]).
    pub fn new() -> HdrHistogram {
        HdrHistogram::with_config(DEFAULT_SUB_BITS, DEFAULT_MAX_NS)
    }

    /// A histogram with `2^sub_bits` unit buckets, `2^(sub_bits-1)`
    /// sub-buckets per octave, and saturation at `max_trackable`.
    ///
    /// `sub_bits` must be in `2..=16` and `max_trackable >= 2^sub_bits`.
    pub fn with_config(sub_bits: u32, max_trackable: u64) -> HdrHistogram {
        assert!(
            (2..=16).contains(&sub_bits),
            "sub_bits {sub_bits} out of range 2..=16"
        );
        assert!(
            max_trackable >= (1 << sub_bits),
            "max_trackable {max_trackable} below the unit-bucket range"
        );
        let mut h = HdrHistogram {
            sub_bits,
            max_trackable,
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min_seen: 0,
            max_seen: 0,
            saturated: 0,
        };
        let buckets = h.index_for(max_trackable) + 1;
        h.counts = vec![0; buckets];
        h
    }

    /// Sub-bucket precision bits of this configuration.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// The saturation point: larger observations clamp here.
    pub fn max_trackable(&self) -> u64 {
        self.max_trackable
    }

    /// Number of buckets in this configuration.
    pub fn bucket_count(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded (saturated ones included).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded (clamped) observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min_seen
    }

    /// Largest recorded (clamped) observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Observations clamped at [`max_trackable`](Self::max_trackable).
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// The bucket index holding `v` (after clamping to the trackable
    /// range).
    pub fn index_for(&self, v: u64) -> usize {
        let v = v.min(self.max_trackable);
        let sub = 1u64 << self.sub_bits;
        if v < sub {
            return v as usize;
        }
        let m = 63 - v.leading_zeros(); // 2^m <= v < 2^(m+1), m >= sub_bits
        let shift = m - self.sub_bits + 1;
        let half = (sub / 2) as usize;
        let top = (v >> shift) as usize; // in [half, 2*half)
        sub as usize + (m - self.sub_bits) as usize * half + (top - half)
    }

    /// The half-open value range `[lo, hi)` bucket `i` covers.
    pub fn bucket_range(&self, i: usize) -> (u64, u64) {
        let sub = 1u64 << self.sub_bits;
        if (i as u64) < sub {
            return (i as u64, i as u64 + 1);
        }
        let half = sub / 2;
        let j = i as u64 - sub;
        let octave = j / half;
        let pos = j % half;
        let shift = octave + 1;
        let lo = (half + pos) << shift;
        (lo, lo + (1 << shift))
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let clamped = v.min(self.max_trackable);
        if v > self.max_trackable {
            self.saturated += n;
        }
        let i = self.index_for(clamped);
        self.counts[i] += n;
        if self.total == 0 {
            self.min_seen = clamped;
            self.max_seen = clamped;
        } else {
            self.min_seen = self.min_seen.min(clamped);
            self.max_seen = self.max_seen.max(clamped);
        }
        self.total += n;
        self.sum += clamped as u128 * n as u128;
    }

    /// Folds `other` into `self`. Both histograms must share a
    /// configuration (same boundaries), which makes the merge exact.
    pub fn merge(&mut self, other: &HdrHistogram) {
        assert_eq!(
            (self.sub_bits, self.max_trackable),
            (other.sub_bits, other.max_trackable),
            "cannot merge HDR histograms with different configurations"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if other.total > 0 {
            if self.total == 0 {
                self.min_seen = other.min_seen;
                self.max_seen = other.max_seen;
            } else {
                self.min_seen = self.min_seen.min(other.min_seen);
                self.max_seen = self.max_seen.max(other.max_seen);
            }
        }
        self.total += other.total;
        self.sum += other.sum;
        self.saturated += other.saturated;
    }

    /// The `q`-quantile (`0 < q <= 1`) as the highest value equivalent
    /// to the bucket the rank lands in — i.e. the smallest exposed `le`
    /// boundary with cumulative count ≥ `ceil(q · total)`. `None` when
    /// empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.bucket_range(i).1 - 1);
            }
        }
        Some(self.bucket_range(self.counts.len() - 1).1 - 1)
    }

    /// Non-empty buckets as `(le, count)` pairs, ascending, where `le`
    /// is the bucket's inclusive upper value bound.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_range(i).1 - 1, c))
            .collect()
    }

    /// Clears all recorded data, keeping the configuration.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min_seen = 0;
        self.max_seen = 0;
        self.saturated = 0;
    }
}

/// A shareable, thread-safe handle to one registered [`HdrHistogram`]
/// (see [`crate::metrics::Registry::hdr`]). Cloning shares storage.
#[derive(Debug, Clone)]
pub struct HdrHandle(Arc<Mutex<HdrHistogram>>);

impl HdrHandle {
    /// Wraps a histogram in a shareable handle.
    pub fn new(hist: HdrHistogram) -> HdrHandle {
        HdrHandle(Arc::new(Mutex::new(hist)))
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.lock().expect("hdr histogram poisoned").record(v);
    }

    /// Folds a thread-local histogram into the shared one.
    pub fn merge_from(&self, other: &HdrHistogram) {
        self.0.lock().expect("hdr histogram poisoned").merge(other);
    }

    /// Runs `f` against the current state.
    pub fn with<R>(&self, f: impl FnOnce(&HdrHistogram) -> R) -> R {
        f(&self.0.lock().expect("hdr histogram poisoned"))
    }

    /// Clears recorded data, keeping the configuration.
    pub fn clear(&self) {
        self.0.lock().expect("hdr histogram poisoned").clear();
    }

    /// A frozen copy for rendering.
    pub fn snapshot(&self) -> HdrSnapshot {
        self.with(|h| HdrSnapshot::from(h))
    }
}

/// A frozen [`HdrHistogram`]: sparse non-empty buckets plus the scalar
/// aggregates, as embedded in [`crate::metrics::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdrSnapshot {
    /// Sub-bucket precision bits.
    pub sub_bits: u32,
    /// Saturation point.
    pub max_trackable: u64,
    /// Total observations.
    pub total: u64,
    /// Exact sum of clamped observations.
    pub sum: u128,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest clamped observation (0 when empty).
    pub max: u64,
    /// Observations clamped at `max_trackable`.
    pub saturated: u64,
    /// Non-empty buckets as `(le, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl From<&HdrHistogram> for HdrSnapshot {
    fn from(h: &HdrHistogram) -> Self {
        HdrSnapshot {
            sub_bits: h.sub_bits,
            max_trackable: h.max_trackable,
            total: h.total,
            sum: h.sum,
            min: h.min_seen,
            max: h.max_seen,
            saturated: h.saturated,
            buckets: h.nonzero_buckets(),
        }
    }
}

impl HdrSnapshot {
    /// The `q`-quantile over the frozen buckets (`None` when empty);
    /// same semantics as [`HdrHistogram::value_at_quantile`].
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for &(le, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return Some(le);
            }
        }
        self.buckets.last().map(|&(le, _)| le)
    }

    /// Cumulative `(le, count)` pairs over the non-empty buckets — the
    /// series the Prometheus exposition emits (plus `+Inf`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .map(|&(le, c)| {
                cum += c;
                (le, cum)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        let h = HdrHistogram::new();
        for v in 0..(1 << DEFAULT_SUB_BITS) {
            let (lo, hi) = h.bucket_range(h.index_for(v));
            assert_eq!((lo, hi), (v, v + 1), "value {v} must get a unit bucket");
        }
    }

    #[test]
    fn bucket_boundaries_are_deterministic_and_contiguous() {
        let h = HdrHistogram::with_config(5, 1 << 20);
        let mut expected_lo = 0u64;
        for i in 0..h.bucket_count() {
            let (lo, hi) = h.bucket_range(i);
            assert_eq!(lo, expected_lo, "bucket {i} not contiguous");
            assert!(hi > lo);
            expected_lo = hi;
        }
        // Every value indexes into the bucket whose range contains it.
        for v in [0, 1, 31, 32, 33, 100, 1023, 1024, 65_535, 1 << 20] {
            let (lo, hi) = h.bucket_range(h.index_for(v));
            assert!(
                lo <= v && v < hi,
                "value {v} outside its bucket [{lo},{hi})"
            );
        }
        // Same config ⇒ same boundaries.
        let h2 = HdrHistogram::with_config(5, 1 << 20);
        assert_eq!(h.bucket_count(), h2.bucket_count());
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = HdrHistogram::new();
        let half = (1u64 << (DEFAULT_SUB_BITS - 1)) as f64;
        for v in [100u64, 460, 999, 40_000_000, 7_777_777_777] {
            let (lo, hi) = h.bucket_range(h.index_for(v));
            let err = (hi - 1 - lo) as f64 / lo as f64;
            assert!(err <= 1.0 / half + 1e-12, "value {v}: error {err}");
        }
    }

    #[test]
    fn resolves_cache_hit_and_stall_in_one_instrument() {
        // The motivating case: 460 ns and 40 ms land in distinct buckets
        // with small relative error — impossible for one linear binning.
        let mut h = HdrHistogram::new();
        h.record(460);
        h.record(40_000_000);
        assert_ne!(h.index_for(460), h.index_for(40_000_000));
        let p50 = h.value_at_quantile(0.5).unwrap();
        let p100 = h.value_at_quantile(1.0).unwrap();
        assert!((p50 as f64 - 460.0).abs() / 460.0 < 0.07, "p50 {p50}");
        assert!(
            (p100 as f64 - 4e7).abs() / 4e7 < 0.07,
            "p100 {p100} too far from the 40 ms stall"
        );
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = HdrHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 10_000);
        assert_eq!(h.sum(), (10_000u128 * 10_001) / 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, want) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.value_at_quantile(q).unwrap() as f64;
            assert!(
                (got - want).abs() / want < 0.07,
                "q={q}: got {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn saturation_clamps_and_counts() {
        let mut h = HdrHistogram::with_config(3, 1000);
        h.record(5);
        h.record(10_000);
        h.record(u64::MAX);
        assert_eq!(h.total(), 3);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 5 + 1000 + 1000);
        assert_eq!(
            h.value_at_quantile(1.0),
            Some(h.bucket_range(h.bucket_count() - 1).1 - 1)
        );
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = HdrHistogram::new();
        let mut b = HdrHistogram::new();
        let mut combined = HdrHistogram::new();
        for v in [12u64, 460, 999, 5_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [3u64, 40_000_000, 81, 81] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined, "merge must equal the combined stream");
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merge_rejects_mismatched_configs() {
        let mut a = HdrHistogram::with_config(4, 1 << 20);
        let b = HdrHistogram::with_config(5, 1 << 20);
        a.merge(&b);
    }

    #[test]
    fn snapshot_buckets_and_cumulative() {
        let mut h = HdrHistogram::with_config(2, 48);
        for v in [1u64, 5, 7, 100] {
            h.record(v);
        }
        let snap = HdrSnapshot::from(&h);
        assert_eq!(snap.total, 4);
        assert_eq!(snap.saturated, 1);
        assert_eq!(snap.sum, 1 + 5 + 7 + 48);
        assert_eq!(snap.buckets, vec![(1, 1), (5, 1), (7, 1), (63, 1)]);
        assert_eq!(
            snap.cumulative_buckets(),
            vec![(1, 1), (5, 2), (7, 3), (63, 4)]
        );
        assert_eq!(snap.value_at_quantile(0.5), Some(5));
        assert_eq!(snap.value_at_quantile(1.0), Some(63));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = HdrHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.value_at_quantile(0.5), None);
        let snap = HdrSnapshot::from(&h);
        assert_eq!(snap.value_at_quantile(0.99), None);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn handle_shares_storage_and_merges_thread_locals() {
        let handle = HdrHandle::new(HdrHistogram::new());
        let h2 = handle.clone();
        handle.observe(100);
        h2.observe(200);
        assert_eq!(handle.with(|h| h.total()), 2);
        // Per-thread locals folded through merge_from.
        let mut local = HdrHistogram::new();
        local.record(300);
        handle.merge_from(&local);
        assert_eq!(handle.with(|h| h.total()), 3);
        handle.clear();
        assert_eq!(handle.with(|h| h.total()), 0);
    }

    #[test]
    fn clear_keeps_configuration() {
        let mut h = HdrHistogram::with_config(4, 1 << 16);
        h.record(77);
        let buckets = h.bucket_count();
        h.clear();
        assert_eq!(h.total(), 0);
        assert_eq!(h.bucket_count(), buckets);
        h.record(77); // still usable
        assert_eq!(h.total(), 1);
    }
}
