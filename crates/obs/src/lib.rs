//! In-tree observability for the GPS workspace: a structured event
//! journal, a metrics registry, and span timing — with **zero external
//! dependencies**, consistent with the hermetic-build policy.
//!
//! The three pillars:
//!
//! * [`journal`] — leveled, component-targeted events serialized as
//!   NDJSON to a runtime-selectable sink ([`journal::Sink::Noop`] /
//!   `Stderr` / `File`). The default is `Noop`: silent and
//!   allocation-free, so library code can emit unconditionally.
//! * [`metrics`] — counters, gauges, histograms, and quantile summaries
//!   (aggregation math reused from `gps_stats`), snapshotted to
//!   deterministic JSON reports (`results/*_metrics.json`).
//! * [`span`] — RAII wall-clock timers with hierarchical `/`-separated
//!   labels for the hot paths (θ/ξ optimization, Perron iteration, the
//!   simulator event loops), folded into the same registry.
//!
//! Plus [`manifest`] — per-campaign provenance records (seed, config,
//!  output row counts) — and [`json`], the shared writer/parser.
//!
//! On top of the pillars sit the operable surfaces: [`exporter`] (a
//! zero-dependency `/metrics` + `/progress` HTTP server in Prometheus
//! text exposition format), [`monitor`] (online bound-violation
//! detection against the paper's analytic tail curves), [`report`] (the
//! static-HTML results dashboard), [`trace`] (the `GPS_OBS_TRACE`
//! flight recorder exporting Chrome trace-event JSON), and [`progress`]
//! (the live campaign progress tracker behind `/progress`).
//!
//! # The global hub
//!
//! Library crates (simulators, solvers) emit through the process-global
//! [`Obs`] hub returned by [`global()`]. It starts disabled (Noop sink, no
//! timing); binaries opt in once at startup via [`init`]:
//!
//! ```
//! use gps_obs::{ObsConfig, journal::SinkKind};
//! // In a binary's main(), before any simulation work:
//! let _ = gps_obs::init(ObsConfig {
//!     sink: SinkKind::Stderr,
//!     level: gps_obs::Level::Info,
//!     timing: true,
//! });
//! gps_obs::info("campaign", "start", &[("seed", 7u64.into())]);
//! let _guard = gps_obs::span("setup");
//! assert!(gps_obs::global().metrics().snapshot().counters.is_empty());
//! ```
//!
//! Determinism contract: with a fixed seed, everything the hub writes is
//! byte-identical across runs except the explicit timing data — the
//! journal's `t_us` field, the manifest's `"timing"` key, and the
//! snapshot's `"spans"` section.

pub mod exporter;
pub mod hdrhist;
pub mod journal;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod monitor;
pub mod progress;
pub mod report;
pub mod slo;
pub mod span;
pub mod trace;

pub use exporter::{
    current_request_id, http_get, to_prometheus_text, ClientConfig, Exporter, HttpClient,
    HttpRequest, RequestHandler, RetryingClient, RouteHandler, RouteResponse, TelemetryConfig,
};
pub use hdrhist::{HdrHandle, HdrHistogram, HdrSnapshot};
pub use journal::{FieldValue, Journal, Level, ParsedEvent, SinkKind};
pub use manifest::RunManifest;
pub use metrics::{labeled, Counter, Gauge, Registry, Snapshot, SpanStats};
pub use monitor::{BoundCurve, BoundMonitor, SeriesKind, SessionCurves};
pub use progress::{global_progress, Progress};
pub use slo::{SloSet, SloSpec, SloStatus};
pub use span::Span;
pub use trace::{TraceKind, TraceMode, TraceScope};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Configuration for the global hub.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Where journal events go.
    pub sink: SinkKind,
    /// Minimum journal level.
    pub level: Level,
    /// Whether spans measure wall-clock time (off ⇒ spans are free).
    pub timing: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sink: SinkKind::Noop,
            level: Level::Info,
            timing: false,
        }
    }
}

impl ObsConfig {
    /// Reads `GPS_OBS_SINK` (`noop`/`stderr`/a file path), `GPS_OBS_LEVEL`
    /// (`debug`/`info`/`warn`/`error`), and `GPS_OBS_TIMING` (`1`/`0`),
    /// falling back to `default` for anything unset.
    pub fn from_env_or(default: ObsConfig) -> ObsConfig {
        let sink = match std::env::var("GPS_OBS_SINK") {
            Ok(s) => SinkKind::parse(&s),
            Err(_) => default.sink,
        };
        let level = std::env::var("GPS_OBS_LEVEL")
            .ok()
            .and_then(|s| Level::parse(&s))
            .unwrap_or(default.level);
        let timing = match std::env::var("GPS_OBS_TIMING") {
            Ok(s) => s == "1" || s == "true",
            Err(_) => default.timing,
        };
        ObsConfig {
            sink,
            level,
            timing,
        }
    }
}

/// The observability hub: one journal plus one metrics registry plus the
/// timing switch. Library code talks to the process-global instance (see
/// [`global`]); tests construct their own.
#[derive(Debug)]
pub struct Obs {
    journal: Journal,
    metrics: Registry,
    timing: AtomicBool,
}

impl Obs {
    /// Builds a hub from `config`. Falls back to a Noop journal if the
    /// file sink cannot be opened (observability must never take the
    /// simulation down).
    pub fn new(config: ObsConfig) -> Obs {
        let journal =
            Journal::from_kind(&config.sink, config.level).unwrap_or_else(|_| Journal::noop());
        Obs {
            journal,
            metrics: Registry::new(),
            timing: AtomicBool::new(config.timing),
        }
    }

    /// A fully disabled hub (Noop journal, timing off).
    pub fn disabled() -> Obs {
        Obs::new(ObsConfig::default())
    }

    /// Re-points an already-built hub at a new configuration: the journal
    /// sink and level swap in place and the timing switch follows. The
    /// metrics registry is untouched (callers that want a clean slate
    /// call [`Registry::reset`]). Returns `false` — leaving the journal
    /// as it was — if a file sink cannot be opened.
    ///
    /// This is the escape hatch for the frozen global hub: benches and
    /// integration checks redirect `global()` mid-process without
    /// violating the first-`init`-wins contract.
    pub fn reconfigure(&self, config: &ObsConfig) -> bool {
        let ok = self.journal.reconfigure(&config.sink, config.level).is_ok();
        self.set_timing(config.timing);
        ok
    }

    /// The journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Whether span timing is on.
    #[inline]
    pub fn timing_enabled(&self) -> bool {
        self.timing.load(Ordering::Relaxed)
    }

    /// Switches span timing on or off at runtime.
    pub fn set_timing(&self, on: bool) {
        self.timing.store(on, Ordering::Relaxed);
    }

    /// Starts a timed span labeled `label` (inert when timing is off).
    #[inline]
    pub fn span(&self, label: &str) -> Span {
        Span::enter(&self.metrics, label, self.timing_enabled())
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// Installs the global hub. Returns `false` if something (an earlier
/// `init` or a `global()` call) already froze it — first caller wins,
/// matching `OnceLock` semantics.
pub fn init(config: ObsConfig) -> bool {
    let mut installed = false;
    GLOBAL.get_or_init(|| {
        installed = true;
        Obs::new(config)
    });
    installed
}

/// The process-global hub; disabled until [`init`] configures it.
#[inline]
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::disabled)
}

/// Emits an event on the global journal (free when the sink is Noop).
#[inline]
pub fn event(level: Level, component: &str, event: &str, fields: &[(&str, FieldValue)]) {
    global().journal().emit(level, component, event, fields);
}

/// [`Level::Info`] shorthand for [`event`].
#[inline]
pub fn info(component: &str, name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Info, component, name, fields);
}

/// [`Level::Debug`] shorthand for [`event`].
#[inline]
pub fn debug(component: &str, name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Debug, component, name, fields);
}

/// [`Level::Warn`] shorthand for [`event`].
#[inline]
pub fn warn(component: &str, name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Warn, component, name, fields);
}

/// [`Level::Error`] shorthand for [`event`].
#[inline]
pub fn error(component: &str, name: &str, fields: &[(&str, FieldValue)]) {
    event(Level::Error, component, name, fields);
}

/// Starts a span on the global hub (inert unless timing was enabled).
#[inline]
pub fn span(label: &str) -> Span {
    global().span(label)
}

/// The global metrics registry.
#[inline]
pub fn metrics() -> &'static Registry {
    global().metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_silent_and_spans_inert() {
        let obs = Obs::disabled();
        assert!(!obs.timing_enabled());
        assert!(!obs.journal().enabled(Level::Error));
        {
            let s = obs.span("x");
            assert!(!s.is_active());
        }
        assert!(obs.metrics().snapshot().is_empty());
    }

    #[test]
    fn timing_toggle_controls_spans() {
        let obs = Obs::disabled();
        obs.set_timing(true);
        {
            let s = obs.span("work");
            assert!(s.is_active());
        }
        assert_eq!(obs.metrics().span_stats("work").unwrap().count, 1);
        obs.set_timing(false);
        {
            let _s = obs.span("work");
        }
        assert_eq!(obs.metrics().span_stats("work").unwrap().count, 1);
    }

    #[test]
    fn config_from_env_defaults() {
        // No GPS_OBS_* set in the test environment for these names.
        let cfg = ObsConfig::from_env_or(ObsConfig {
            sink: SinkKind::Stderr,
            level: Level::Warn,
            timing: true,
        });
        // Either the env overrides or the defaults hold; both must parse
        // to a valid config.
        let obs = Obs::new(cfg);
        let _ = obs.timing_enabled();
    }

    #[test]
    fn file_hub_writes_journal_and_metrics() {
        let dir = std::env::temp_dir().join(format!("gps_obs_hub_{}", std::process::id()));
        let path = dir.join("run.ndjson");
        let obs = Obs::new(ObsConfig {
            sink: SinkKind::File(path.clone()),
            level: Level::Info,
            timing: true,
        });
        obs.journal().info("c", "e", &[("n", FieldValue::U64(1))]);
        obs.metrics().counter("k").inc();
        {
            let _s = obs.span("phase");
        }
        let events = journal::parse_ndjson(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(events.len(), 1);
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counters, vec![("k".to_string(), 1)]);
        assert_eq!(snap.spans.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
