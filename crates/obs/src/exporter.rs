//! Live metrics exposition over TCP: a minimal, dependency-free HTTP/1.1
//! responder serving the registry while a campaign runs.
//!
//! Endpoints:
//!
//! * `/metrics` — the registry snapshot in Prometheus text exposition
//!   format v0.0.4 (see [`to_prometheus_text`]).
//! * `/metrics.json` — the existing deterministic snapshot JSON
//!   ([`Snapshot::to_json`]), spans included.
//! * `/progress` — the live campaign progress document
//!   ([`crate::progress::Progress::to_json`]): replications
//!   done/restored/retried/quarantined, chunk count, throughput, ETA.
//! * `/health` — structured liveness JSON (`status`, `service`,
//!   `uptime_seconds`, `requests`).
//! * `/healthz` — bare `ok`, for probes that can't parse JSON.
//! * `/slo` — per-SLO error budgets and burn rates
//!   ([`crate::slo::SloSet::to_json`]); served when the exporter was
//!   started with request telemetry ([`Exporter::serve_with_telemetry`]).
//!
//! Services can mount extra GET endpoints next to the built-ins with
//! [`Exporter::serve_with_routes`] — the admission-control daemon serves
//! `/admit`, `/depart`, and `/region` this way, concurrently with
//! `/metrics` scrapes.
//!
//! # Request telemetry
//!
//! [`Exporter::serve_with_telemetry`] wraps dispatch in a per-request
//! middleware: every request gets a monotonically-assigned request ID
//! (readable from route handlers via [`current_request_id`]), a
//! per-route/per-status `obs.http.requests` counter, an HDR latency
//! observation per route (`obs.http.request_duration_ns`, exposed as
//! Prometheus `le` buckets), in-flight/connection gauges, an SLO
//! burn-rate evaluation, a flight-recorder
//! [`TraceKind::RequestDispatch`](crate::trace::TraceKind) slice, and —
//! when [`TelemetryConfig::access_log`] is set (env:
//! `GPS_OBS_ACCESS_LOG`) — one NDJSON access-log line through the
//! journal sink. Access-log lines carry wall-clock latency only when
//! global timing is enabled, so the untimed log is byte-deterministic
//! for a deterministic client (verify.sh diffs it across the thread
//! matrix).
//!
//! The accept loop runs on one named thread (`gps-obs-exporter`); each
//! accepted connection is handled on its own short-lived `gps-obs-conn`
//! thread so a slow or stalled client can never wedge `/metrics` for
//! other scrapers. Connections are persistent in the HTTP/1.1 style:
//! the handler loops serving requests (pipelining included) until the
//! client asks `Connection: close`, speaks HTTP/1.0, goes quiet past the
//! read timeout, or exhausts the per-connection request budget
//! ([`MAX_REQUESTS_PER_CONN`]). Shutdown stays exact: dropping (or
//! [`Exporter::shutdown`]-ing) the handle sets a stop flag and makes a
//! wake-up connection to unblock `accept`, then joins the accept thread
//! (in-flight connection threads finish on their own, bounded by the
//! per-connection timeouts and the request budget).
//!
//! Malformed and hostile clients are bounded on every axis: reads and
//! writes time out after two seconds, the request line is capped at 1 KiB
//! (`414 URI Too Long` beyond that), and the whole request head at 8 KiB
//! (`431 Request Header Fields Too Large`).
//!
//! Nothing here is on a hot path: every request takes a fresh
//! [`Registry::snapshot`], so the exporter never holds metric locks
//! across I/O.

use crate::journal::{FieldValue, Journal, SinkKind};
use crate::metrics::{labeled, Registry, Snapshot};
use crate::slo::{SloSet, SloSpec};
use std::cell::Cell;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Prometheus text exposition

/// Maps a registry metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Splits the registry's `name{k=v,k2=v2}` form (see
/// [`crate::metrics::labeled`]) back into base name and label pairs.
fn split_labels(full: &str) -> (&str, Vec<(&str, &str)>) {
    match full.find('{') {
        Some(open) if full.ends_with('}') => {
            let base = &full[..open];
            let inner = &full[open + 1..full.len() - 1];
            let labels = inner
                .split(',')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.find('=') {
                    Some(eq) => (&pair[..eq], &pair[eq + 1..]),
                    None => (pair, ""),
                })
                .collect();
            (base, labels)
        }
        _ => (full, Vec::new()),
    }
}

/// Renders a label set (plus an optional extra label such as
/// `le`/`quantile`) as `{k="v",…}`; empty string when there are none.
fn render_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Prometheus float rendering: finite values use Rust's shortest
/// round-trip `Display`; non-finite values use the format's spellings.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// One exposition family: a `# TYPE` header followed by sample lines,
/// grouped so each family name is declared exactly once.
struct Family {
    name: String,
    kind: &'static str,
    lines: Vec<String>,
}

fn push_family(
    families: &mut Vec<Family>,
    index: &mut std::collections::BTreeMap<String, usize>,
    name: &str,
    kind: &'static str,
) -> usize {
    if let Some(&i) = index.get(name) {
        return i;
    }
    families.push(Family {
        name: name.to_string(),
        kind,
        lines: Vec::new(),
    });
    index.insert(name.to_string(), families.len() - 1);
    families.len() - 1
}

/// Renders a snapshot in Prometheus text exposition format v0.0.4.
///
/// Registry conventions map as follows: dotted names flatten to
/// underscores, counters gain the `_total` suffix (exactly once), labeled
/// names (`name{k=v}`) become proper label sets, histograms emit
/// cumulative `le` buckets (underflow mass included, no `_sum` — the
/// binned histogram does not track one), HDR histograms emit their exact
/// non-empty log buckets as integer `le` boundaries plus `_sum`/`_count`,
/// and summaries emit `quantile="0.5|0.9|0.99"` samples plus
/// `_count`/`_sum`. Span timing stats are exposed as `obs_span_*` gauges
/// labeled by path (`obs_span_samples`, not `_count` — that suffix is
/// reserved for histogram/summary families).
///
/// The output is a pure function of the snapshot: same snapshot, same
/// bytes, which is what lets the thread-count determinism tests pin this
/// surface.
pub fn to_prometheus_text(snap: &Snapshot) -> String {
    let mut families: Vec<Family> = Vec::new();
    let mut index = std::collections::BTreeMap::new();

    for (full, v) in &snap.counters {
        let (base, labels) = split_labels(full);
        // Counters carry exactly one `_total` suffix: appended for the
        // common dotted registry names, left alone if the registry name
        // already ends in `_total`.
        let base = sanitize_name(base);
        let name = if base.ends_with("_total") {
            base
        } else {
            format!("{base}_total")
        };
        let i = push_family(&mut families, &mut index, &name, "counter");
        families[i]
            .lines
            .push(format!("{name}{} {v}", render_labels(&labels, None)));
    }
    for (full, v) in &snap.gauges {
        let (base, labels) = split_labels(full);
        let name = sanitize_name(base);
        let i = push_family(&mut families, &mut index, &name, "gauge");
        families[i].lines.push(format!(
            "{name}{} {}",
            render_labels(&labels, None),
            prom_f64(*v)
        ));
    }
    for (full, h) in &snap.histograms {
        let (base, labels) = split_labels(full);
        let name = sanitize_name(base);
        let i = push_family(&mut families, &mut index, &name, "histogram");
        let width = (h.hi - h.lo) / h.bins.len().max(1) as f64;
        let mut cumulative = h.underflow;
        for (b, &c) in h.bins.iter().enumerate() {
            cumulative += c;
            let edge = h.lo + width * (b + 1) as f64;
            families[i].lines.push(format!(
                "{name}_bucket{} {cumulative}",
                render_labels(&labels, Some(("le", &prom_f64(edge))))
            ));
        }
        families[i].lines.push(format!(
            "{name}_bucket{} {}",
            render_labels(&labels, Some(("le", "+Inf"))),
            h.total
        ));
        families[i].lines.push(format!(
            "{name}_count{} {}",
            render_labels(&labels, None),
            h.total
        ));
    }
    for (full, h) in &snap.hdr {
        let (base, labels) = split_labels(full);
        let name = sanitize_name(base);
        let i = push_family(&mut families, &mut index, &name, "histogram");
        for (le, cumulative) in h.cumulative_buckets() {
            families[i].lines.push(format!(
                "{name}_bucket{} {cumulative}",
                render_labels(&labels, Some(("le", &le.to_string())))
            ));
        }
        families[i].lines.push(format!(
            "{name}_bucket{} {}",
            render_labels(&labels, Some(("le", "+Inf"))),
            h.total
        ));
        families[i].lines.push(format!(
            "{name}_sum{} {}",
            render_labels(&labels, None),
            h.sum
        ));
        families[i].lines.push(format!(
            "{name}_count{} {}",
            render_labels(&labels, None),
            h.total
        ));
    }
    for (full, s) in &snap.summaries {
        let (base, labels) = split_labels(full);
        let name = sanitize_name(base);
        let i = push_family(&mut families, &mut index, &name, "summary");
        for (q, est) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
            if let Some(v) = est {
                families[i].lines.push(format!(
                    "{name}{} {}",
                    render_labels(&labels, Some(("quantile", q))),
                    prom_f64(v)
                ));
            }
        }
        families[i].lines.push(format!(
            "{name}_sum{} {}",
            render_labels(&labels, None),
            prom_f64(s.mean * s.count as f64)
        ));
        families[i].lines.push(format!(
            "{name}_count{} {}",
            render_labels(&labels, None),
            s.count
        ));
    }
    for (path, s) in &snap.spans {
        for (metric, value) in [
            // `_samples`, not `_count`: the reserved `_count` suffix is
            // kept for histogram/summary families only.
            ("obs_span_samples", s.count as f64),
            ("obs_span_total_ns", s.total_ns as f64),
            ("obs_span_mean_ns", s.mean_ns()),
            ("obs_span_min_ns", s.min_ns as f64),
            ("obs_span_max_ns", s.max_ns as f64),
        ] {
            let i = push_family(&mut families, &mut index, metric, "gauge");
            families[i].lines.push(format!(
                "{metric}{} {}",
                render_labels(&[("path", path)], None),
                prom_f64(value)
            ));
        }
    }

    let mut out = String::new();
    for f in &families {
        out.push_str("# TYPE ");
        out.push_str(&f.name);
        out.push(' ');
        out.push_str(f.kind);
        out.push('\n');
        for line in &f.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------
// The HTTP server

const READ_TIMEOUT: Duration = Duration::from_secs(2);
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);
const MAX_REQUEST_BYTES: usize = 8 * 1024;
const MAX_REQUEST_LINE: usize = 1024;
/// Largest request body accepted on POST routes (`413` beyond that) —
/// checkpoint NDJSON lines are well under this.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Requests served on one persistent connection before the server closes
/// it — bounds how long a keep-alive client can pin a `gps-obs-conn`
/// thread (together with the 2 s read timeout per request).
pub const MAX_REQUESTS_PER_CONN: usize = 100;

/// A response produced by a custom route handler mounted via
/// [`Exporter::serve_with_routes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResponse {
    /// HTTP status code (the reason phrase is derived from it).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl RouteResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json".to_string(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain".to_string(),
            body: body.into(),
        }
    }
}

/// Custom GET dispatch: receives the request path (query string
/// included), returns `Some` to serve it or `None` to fall through to
/// 404. Consulted only for paths no built-in endpoint claims.
pub type RouteHandler = Arc<dyn Fn(&str) -> Option<RouteResponse> + Send + Sync>;

/// One parsed request handed to a [`RequestHandler`]: method, path
/// (query string included), and the request body (empty for GET).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET` or `POST`; others are rejected upstream).
    pub method: String,
    /// Request path with its query string.
    pub path: String,
    /// Request body, bounded by the server's body cap.
    pub body: String,
}

/// Custom method-aware dispatch mounted via [`Exporter::serve_requests`]:
/// consulted for every GET path the built-ins don't claim *and* for every
/// POST. Return `Some` to serve, `None` to fall through to 404.
pub type RequestHandler = Arc<dyn Fn(&HttpRequest) -> Option<RouteResponse> + Send + Sync>;

/// The custom dispatch table threaded through connection handlers:
/// either the legacy GET-only handler or the method-aware one.
#[derive(Clone, Default)]
struct RouteTable {
    get: Option<RouteHandler>,
    request: Option<RequestHandler>,
}

/// Configuration for the exporter's request-telemetry middleware (see
/// the module docs and [`Exporter::serve_with_telemetry`]).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Service name, surfaced in `/health` and `/slo`.
    pub service: String,
    /// SLOs evaluated over the request stream.
    pub slos: Vec<SloSpec>,
    /// Where NDJSON access-log lines go (`None` = no access log).
    pub access_log: Option<SinkKind>,
    /// A pre-built SLO set to share with the host process. When set it
    /// replaces `slos`: the exporter records HTTP outcomes into it, and
    /// the host can record non-HTTP events (e.g. shard completions in
    /// `campaignd`) into the same set — both show up at `/slo`.
    pub shared_slo: Option<Arc<SloSet>>,
}

impl TelemetryConfig {
    /// Telemetry with no SLOs and no access log.
    pub fn new(service: impl Into<String>) -> TelemetryConfig {
        TelemetryConfig {
            service: service.into(),
            slos: Vec::new(),
            access_log: None,
            shared_slo: None,
        }
    }

    /// Like [`new`](Self::new), plus an access-log sink taken from
    /// `GPS_OBS_ACCESS_LOG` (`noop`/`stderr`/a file path) when set.
    pub fn from_env(service: impl Into<String>) -> TelemetryConfig {
        let mut cfg = TelemetryConfig::new(service);
        if let Ok(v) = std::env::var("GPS_OBS_ACCESS_LOG") {
            cfg.access_log = Some(SinkKind::parse(&v));
        }
        cfg
    }

    /// Adds SLOs to evaluate.
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> TelemetryConfig {
        self.slos = slos;
        self
    }

    /// Shares a pre-built [`SloSet`] between the exporter and the host
    /// process (overrides [`with_slos`](Self::with_slos)).
    pub fn with_shared_slo(mut self, slo: Arc<SloSet>) -> TelemetryConfig {
        self.shared_slo = Some(slo);
        self
    }
}

/// Live request-telemetry state shared by all connection threads.
#[derive(Debug)]
struct Telemetry {
    next_id: AtomicU64,
    in_flight: AtomicU64,
    open_conns: AtomicU64,
    access: Option<Journal>,
    slo: Arc<SloSet>,
}

/// Per-exporter state threaded into every connection handler.
#[derive(Debug)]
struct ServerState {
    service: String,
    started: Instant,
    telemetry: Option<Telemetry>,
}

impl ServerState {
    fn new(service: String, telemetry: Option<Telemetry>) -> ServerState {
        ServerState {
            service,
            started: Instant::now(),
            telemetry,
        }
    }
}

thread_local! {
    /// The request ID the current connection thread is dispatching
    /// (0 = none). Route handlers run synchronously on the connection
    /// thread, so downstream code (e.g. the admission engine) can tag
    /// its own journal events and trace slices with the ID without any
    /// signature change.
    static CURRENT_REQUEST_ID: Cell<u64> = const { Cell::new(0) };
}

/// The request ID being dispatched on this thread, when the exporter
/// was started with telemetry and a request is in flight.
pub fn current_request_id() -> Option<u64> {
    let id = CURRENT_REQUEST_ID.with(|c| c.get());
    (id != 0).then_some(id)
}

/// In-flight accounting for one request: assigned ID, start instant,
/// and the flight-recorder slice open for its duration.
struct RequestCtx {
    id: u64,
    t0: Instant,
    _slice: crate::trace::TraceScope,
}

/// How a request ended: the final route/status labels and the response
/// body size, as recorded by [`Telemetry::finish_request`].
struct RequestOutcome<'a> {
    method: &'a str,
    route: &'a str,
    status: u16,
    bytes: usize,
}

impl Telemetry {
    fn new(registry: &Registry, cfg: &TelemetryConfig) -> Telemetry {
        let access = cfg.access_log.as_ref().map(|kind| {
            Journal::from_kind(kind, crate::Level::Info).unwrap_or_else(|_| Journal::noop())
        });
        // Touch the gauges so they render (at zero) from the first
        // scrape, not the first request.
        registry.gauge("obs.http.in_flight").set(0.0);
        registry.gauge("obs.http.open_connections").set(0.0);
        Telemetry {
            next_id: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            open_conns: AtomicU64::new(0),
            access,
            slo: cfg
                .shared_slo
                .clone()
                .unwrap_or_else(|| Arc::new(SloSet::new(cfg.slos.clone()))),
        }
    }

    fn connection_opened(&self, registry: &Registry) {
        registry.counter("obs.http.connections").inc();
        let open = self.open_conns.fetch_add(1, Ordering::Relaxed) + 1;
        registry.gauge("obs.http.open_connections").set(open as f64);
    }

    fn connection_closed(&self, registry: &Registry) {
        let open = self
            .open_conns
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        registry.gauge("obs.http.open_connections").set(open as f64);
    }

    /// Assigns the next request ID and opens its trace slice. `route`
    /// is only advisory here (the final label is decided at finish).
    fn begin_request(&self, registry: &Registry, route: &str) -> RequestCtx {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        CURRENT_REQUEST_ID.with(|c| c.set(id));
        let in_flight = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        registry.gauge("obs.http.in_flight").set(in_flight as f64);
        RequestCtx {
            id,
            t0: Instant::now(),
            _slice: crate::trace::scope(crate::trace::TraceKind::RequestDispatch, route, id),
        }
    }

    /// Closes out one request once its response body is decided (and
    /// before the bytes hit the socket — a client that has read the
    /// response can rely on the access-log line being flushed): counters,
    /// HDR latency, SLO evaluation, and the optional access-log line.
    fn finish_request(
        &self,
        registry: &Registry,
        started: &Instant,
        ctx: RequestCtx,
        outcome: RequestOutcome<'_>,
    ) {
        let RequestOutcome {
            method,
            route,
            status,
            bytes,
        } = outcome;
        CURRENT_REQUEST_ID.with(|c| c.set(0));
        let latency_ns = ctx.t0.elapsed().as_nanos() as u64;
        let in_flight = self
            .in_flight
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        registry.gauge("obs.http.in_flight").set(in_flight as f64);
        let status_str = status.to_string();
        registry
            .counter(&labeled(
                "obs.http.requests",
                &[("route", route), ("status", &status_str)],
            ))
            .inc();
        registry
            .hdr(&labeled(
                "obs.http.request_duration_ns",
                &[("route", route)],
            ))
            .observe(latency_ns);
        self.slo.record(
            registry,
            started.elapsed().as_secs(),
            route,
            status,
            latency_ns,
        );
        if let Some(access) = &self.access {
            // Latency is wall clock; keep it out of the line unless
            // timing was opted into, so the untimed access log stays
            // byte-deterministic for a deterministic client.
            if crate::global().timing_enabled() {
                access.info(
                    "obs.access",
                    "request",
                    &[
                        ("request_id", FieldValue::U64(ctx.id)),
                        ("method", FieldValue::from(method)),
                        ("route", FieldValue::from(route)),
                        ("status", FieldValue::U64(u64::from(status))),
                        ("bytes", FieldValue::U64(bytes as u64)),
                        ("latency_us", FieldValue::U64(latency_ns / 1_000)),
                    ],
                );
            } else {
                access.info(
                    "obs.access",
                    "request",
                    &[
                        ("request_id", FieldValue::U64(ctx.id)),
                        ("method", FieldValue::from(method)),
                        ("route", FieldValue::from(route)),
                        ("status", FieldValue::U64(u64::from(status))),
                        ("bytes", FieldValue::U64(bytes as u64)),
                    ],
                );
            }
        }
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// A live `/metrics` server bound to one registry. Construct with
/// [`Exporter::serve`]; the listener thread stops when the handle is
/// shut down or dropped.
#[derive(Debug)]
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Exporter {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `registry` on a thread named `gps-obs-exporter`.
    pub fn serve(addr: &str, registry: Registry) -> std::io::Result<Exporter> {
        Self::start(addr, registry, RouteTable::default(), None)
    }

    /// [`serve`](Self::serve) plus a custom route handler consulted for
    /// every GET path the built-in endpoints don't claim.
    pub fn serve_with_routes(
        addr: &str,
        registry: Registry,
        routes: RouteHandler,
    ) -> std::io::Result<Exporter> {
        let table = RouteTable {
            get: Some(routes),
            request: None,
        };
        Self::start(addr, registry, table, None)
    }

    /// [`serve_with_routes`](Self::serve_with_routes) with the
    /// request-telemetry middleware enabled: request IDs, per-route
    /// counters and HDR latency, in-flight gauges, SLO burn-rate
    /// evaluation (served at `/slo`), and the optional access log.
    pub fn serve_with_telemetry(
        addr: &str,
        registry: Registry,
        routes: Option<RouteHandler>,
        telemetry: TelemetryConfig,
    ) -> std::io::Result<Exporter> {
        let table = RouteTable {
            get: routes,
            request: None,
        };
        Self::start(addr, registry, table, Some(telemetry))
    }

    /// [`serve`](Self::serve) plus a method-aware [`RequestHandler`]:
    /// consulted for unclaimed GETs and for every POST (bodies framed by
    /// `Content-Length`, capped server-side with `413` beyond the cap).
    /// Optional telemetry as in
    /// [`serve_with_telemetry`](Self::serve_with_telemetry).
    pub fn serve_requests(
        addr: &str,
        registry: Registry,
        handler: RequestHandler,
        telemetry: Option<TelemetryConfig>,
    ) -> std::io::Result<Exporter> {
        let table = RouteTable {
            get: None,
            request: Some(handler),
        };
        Self::start(addr, registry, table, telemetry)
    }

    fn start(
        addr: &str,
        registry: Registry,
        routes: RouteTable,
        telemetry: Option<TelemetryConfig>,
    ) -> std::io::Result<Exporter> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let service = telemetry
            .as_ref()
            .map(|t| t.service.clone())
            .unwrap_or_else(|| "gps-obs".to_string());
        let state = Arc::new(ServerState::new(
            service,
            telemetry.as_ref().map(|cfg| Telemetry::new(&registry, cfg)),
        ));
        let handle = std::thread::Builder::new()
            .name("gps-obs-exporter".to_string())
            .spawn(move || serve_loop(listener, registry, thread_stop, routes, state))?;
        crate::info(
            "obs.exporter",
            "started",
            &[("addr", local.to_string().as_str().into())],
        );
        Ok(Exporter {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address — useful when serving on port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it. Also runs on drop;
    /// calling it explicitly just makes teardown order visible.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect_timeout(&self.addr, READ_TIMEOUT);
            let _ = handle.join();
            crate::info(
                "obs.exporter",
                "stopped",
                &[("addr", self.addr.to_string().as_str().into())],
            );
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Registry,
    stop: Arc<AtomicBool>,
    routes: RouteTable,
    state: Arc<ServerState>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = conn {
            // One short-lived thread per connection: a stalled client
            // burns its own read timeout, not other scrapers' latency.
            let registry = registry.clone();
            let routes = routes.clone();
            let state = Arc::clone(&state);
            let _ = std::thread::Builder::new()
                .name("gps-obs-conn".to_string())
                .spawn(move || handle_connection(stream, &registry, &routes, &state));
        }
    }
}

/// Outcome of pulling one request head off a persistent connection.
enum HeadRead {
    /// A complete head (request line + headers + blank line).
    Complete(Vec<u8>),
    /// Request line exceeded [`MAX_REQUEST_LINE`].
    LineTooLong,
    /// Head exceeded [`MAX_REQUEST_BYTES`].
    HeadTooLarge,
    /// Peer closed, stalled past the read timeout, or errored.
    Closed,
}

/// Reads one request head, consuming it from `carry` (which may already
/// hold pipelined bytes from the previous read and keeps any surplus for
/// the next request). Bodies are framed separately by
/// [`read_request_body`] using the head's `Content-Length`.
fn read_request_head(stream: &mut TcpStream, carry: &mut Vec<u8>) -> HeadRead {
    let mut chunk = [0u8; 512];
    loop {
        let line_end = carry.windows(2).position(|w| w == b"\r\n");
        if line_end.map_or(carry.len() > MAX_REQUEST_LINE, |e| e > MAX_REQUEST_LINE) {
            return HeadRead::LineTooLong;
        }
        if let Some(end) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = carry[..end + 4].to_vec();
            carry.drain(..end + 4);
            return HeadRead::Complete(head);
        }
        if carry.len() > MAX_REQUEST_BYTES {
            return HeadRead::HeadTooLarge;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return HeadRead::Closed,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(_) => return HeadRead::Closed,
        }
    }
}

/// The request body size announced by the head (`0` when absent or
/// unparseable — GETs carry no body and the client we ship always sends
/// `Content-Length` on POST).
fn content_length_of(head: &str) -> usize {
    head.lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(name, _)| name.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Pulls `len` body bytes off the connection, starting from whatever the
/// head read left in `carry`. Returns `None` if the peer closes or stalls
/// mid-body.
fn read_request_body(stream: &mut TcpStream, carry: &mut Vec<u8>, len: usize) -> Option<Vec<u8>> {
    let mut chunk = [0u8; 1024];
    while carry.len() < len {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
        }
    }
    let body = carry[..len].to_vec();
    carry.drain(..len);
    Some(body)
}

/// True when the request head asks to keep the connection open: HTTP/1.1
/// defaults to persistent unless a `Connection: close` header appears;
/// HTTP/1.0 (and anything unrecognized) closes.
fn wants_keep_alive(head: &str) -> bool {
    let mut lines = head.lines();
    let version = lines
        .next()
        .unwrap_or("")
        .split_whitespace()
        .nth(2)
        .unwrap_or("");
    if version != "HTTP/1.1" {
        return false;
    }
    for line in lines {
        if let Some(value) = line
            .split_once(':')
            .filter(|(name, _)| name.eq_ignore_ascii_case("connection"))
            .map(|(_, v)| v)
        {
            return !value.trim().eq_ignore_ascii_case("close");
        }
    }
    true
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &Registry,
    routes: &RouteTable,
    state: &ServerState,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    // Request/response over a persistent connection is exactly the
    // write-write-read pattern where Nagle + delayed ACK costs ~40 ms per
    // round trip; responses are tiny, so flush segments immediately.
    let _ = stream.set_nodelay(true);
    let telemetry = state.telemetry.as_ref();
    if let Some(t) = telemetry {
        t.connection_opened(registry);
    }
    let mut carry = Vec::with_capacity(512);
    for served in 0..MAX_REQUESTS_PER_CONN {
        let head_bytes = match read_request_head(&mut stream, &mut carry) {
            HeadRead::Complete(bytes) => bytes,
            HeadRead::LineTooLong => {
                registry.counter("obs.exporter.requests").inc();
                let ctx = telemetry.map(|t| t.begin_request(registry, "bad_request"));
                if let (Some(t), Some(ctx)) = (telemetry, ctx) {
                    let outcome = RequestOutcome {
                        method: "GET",
                        route: "bad_request",
                        status: 414,
                        bytes: 0,
                    };
                    t.finish_request(registry, &state.started, ctx, outcome);
                }
                respond_and_drain(&mut stream, 414, "URI Too Long", "request line too long\n");
                break;
            }
            HeadRead::HeadTooLarge => {
                registry.counter("obs.exporter.requests").inc();
                let ctx = telemetry.map(|t| t.begin_request(registry, "bad_request"));
                if let (Some(t), Some(ctx)) = (telemetry, ctx) {
                    let outcome = RequestOutcome {
                        method: "GET",
                        route: "bad_request",
                        status: 431,
                        bytes: 0,
                    };
                    t.finish_request(registry, &state.started, ctx, outcome);
                }
                respond_and_drain(
                    &mut stream,
                    431,
                    "Request Header Fields Too Large",
                    "request head too large\n",
                );
                break;
            }
            HeadRead::Closed => break,
        };
        let head = String::from_utf8_lossy(&head_bytes);
        let mut parts = head.lines().next().unwrap_or("").split_whitespace();
        let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        registry.counter("obs.exporter.requests").inc();
        // The last budgeted request closes regardless of what the client
        // asked for; the `Connection:` header in the response says which.
        let keep = wants_keep_alive(&head) && served + 1 < MAX_REQUESTS_PER_CONN;
        // Provisional route label: path without its query string. The
        // final label collapses unmatched paths to "unmatched" so hostile
        // scans cannot mint unbounded per-route series.
        let provisional = path.split('?').next().unwrap_or(path);
        let announced = content_length_of(&head);
        if announced > MAX_BODY_BYTES {
            let ctx = telemetry.map(|t| t.begin_request(registry, "bad_request"));
            if let (Some(t), Some(ctx)) = (telemetry, ctx) {
                let outcome = RequestOutcome {
                    method,
                    route: "bad_request",
                    status: 413,
                    bytes: 0,
                };
                t.finish_request(registry, &state.started, ctx, outcome);
            }
            respond_and_drain(
                &mut stream,
                413,
                "Content Too Large",
                "request body too large\n",
            );
            break;
        }
        // Consume the body even on paths that ignore it — keep-alive
        // framing depends on the next head starting after it.
        let request_body = match read_request_body(&mut stream, &mut carry, announced) {
            Some(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            None => break,
        };
        let ctx = telemetry.map(|t| t.begin_request(registry, provisional));
        let (status, content_type, body) =
            dispatch(method, path, &request_body, registry, routes, state);
        if let (Some(t), Some(ctx)) = (telemetry, ctx) {
            let route = if status == 404 || status == 405 {
                "unmatched"
            } else {
                provisional
            };
            let outcome = RequestOutcome {
                method,
                route,
                status,
                bytes: body.len(),
            };
            t.finish_request(registry, &state.started, ctx, outcome);
        }
        respond(
            &mut stream,
            status,
            reason_for(status),
            &content_type,
            &body,
            keep,
        );
        if !keep {
            break;
        }
    }
    if let Some(t) = telemetry {
        t.connection_closed(registry);
    }
}

/// Produces `(status, content type, body)` for one request; the caller
/// writes the response and feeds the outcome to the telemetry layer.
/// Built-ins answer GET only; POST goes to the mounted
/// [`RequestHandler`] when there is one, `405` otherwise.
fn dispatch(
    method: &str,
    path: &str,
    body: &str,
    registry: &Registry,
    routes: &RouteTable,
    state: &ServerState,
) -> (u16, String, String) {
    if method == "POST" {
        return match &routes.request {
            Some(handler) => {
                let request = HttpRequest {
                    method: method.to_string(),
                    path: path.to_string(),
                    body: body.to_string(),
                };
                match handler(&request) {
                    Some(r) => (r.status, r.content_type, r.body),
                    None => (404, "text/plain".to_string(), "not found\n".to_string()),
                }
            }
            None => (405, "text/plain".to_string(), "GET only\n".to_string()),
        };
    }
    if method != "GET" {
        let hint = if routes.request.is_some() {
            "GET or POST only\n"
        } else {
            "GET only\n"
        };
        return (405, "text/plain".to_string(), hint.to_string());
    }
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8".to_string(),
            to_prometheus_text(&registry.snapshot()),
        ),
        "/metrics.json" => (
            200,
            "application/json".to_string(),
            registry.snapshot().to_json(),
        ),
        "/progress" => (
            200,
            "application/json".to_string(),
            crate::progress::global_progress().to_json(),
        ),
        "/health" => (
            200,
            "application/json".to_string(),
            health_json(registry, state),
        ),
        "/healthz" => (200, "text/plain".to_string(), "ok\n".to_string()),
        "/slo" => match &state.telemetry {
            Some(t) => (
                200,
                "application/json".to_string(),
                t.slo
                    .to_json(&state.service, state.started.elapsed().as_secs()),
            ),
            None => route_or_404(path, routes),
        },
        other => route_or_404(other, routes),
    }
}

fn route_or_404(path: &str, routes: &RouteTable) -> (u16, String, String) {
    if let Some(r) = routes.get.as_ref().and_then(|h| h(path)) {
        return (r.status, r.content_type, r.body);
    }
    if let Some(handler) = &routes.request {
        let request = HttpRequest {
            method: "GET".to_string(),
            path: path.to_string(),
            body: String::new(),
        };
        if let Some(r) = handler(&request) {
            return (r.status, r.content_type, r.body);
        }
    }
    (404, "text/plain".to_string(), "not found\n".to_string())
}

/// The structured `/health` document: liveness plus just enough
/// identity (service, uptime, request count) to tell *which* healthy
/// process answered.
fn health_json(registry: &Registry, state: &ServerState) -> String {
    let mut service = String::new();
    crate::json::write_escaped(&state.service, &mut service);
    format!(
        "{{\"status\":\"ok\",\"service\":{service},\"uptime_seconds\":{},\"requests\":{}}}\n",
        state.started.elapsed().as_secs(),
        registry.counter("obs.exporter.requests").get()
    )
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One write per response: head and body in the same segment keeps a
    // keep-alive round trip to a single packet each way.
    let mut message = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    message.push_str(body);
    let _ = stream.write_all(message.as_bytes());
    let _ = stream.flush();
}

/// Responds with an error status and then drains whatever the client has
/// already sent before the connection drops. Closing a socket with unread
/// bytes in its receive buffer sends `RST`, which can destroy the response
/// before the client reads it; draining (bounded by the read timeout and a
/// byte cap) turns the close into an orderly `FIN`.
fn respond_and_drain(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    respond(stream, status, reason, "text/plain", body, false);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    let mut drained = 0usize;
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 {
            break;
        }
        drained += n;
        if drained > 64 * 1024 {
            break;
        }
    }
}

/// A minimal blocking HTTP GET against a local exporter — the in-tree
/// client used by integration checks so `verify.sh` needs no `curl`.
/// Returns `(status, body)`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, READ_TIMEOUT)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let _ = stream.set_nodelay(true);
    let request = format!("GET {path} HTTP/1.1\r\nHost: gps-obs\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = match response.find("\r\n\r\n") {
        Some(i) => response[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

/// A persistent-connection HTTP client: issues many GETs over one TCP
/// connection (the server's keep-alive path), parsing `Content-Length`
/// to frame each response. Used by the admission benchmarks and the
/// `obs_check` / `verify.sh` smoke tests so scripted decision streams
/// don't pay a TCP handshake per request.
///
/// The server closes the connection after [`MAX_REQUESTS_PER_CONN`]
/// requests; a `get` past that returns an error — reconnect to continue
/// (or use [`RetryingClient`], which does it for you).
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    carry: Vec<u8>,
}

/// Timeout/retry policy for [`HttpClient::connect_with`] and
/// [`RetryingClient`]. Fully deterministic: a fixed timeout on connect,
/// read, and write, a bounded retry count, and linear attempt-count
/// backoff (`attempt × backoff_step`, no jitter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Connect/read/write timeout.
    pub timeout: Duration,
    /// Retries after the first attempt (0 = fail fast).
    pub retries: u32,
    /// Backoff step: attempt `k` (1-based) sleeps `k × backoff_step`
    /// before retrying.
    pub backoff_step: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: READ_TIMEOUT,
            retries: 2,
            backoff_step: Duration::from_millis(25),
        }
    }
}

impl ClientConfig {
    /// Policy from the environment: `GPS_HTTP_TIMEOUT_MS` (default
    /// 2000) and `GPS_HTTP_RETRIES` (default 2).
    pub fn from_env() -> ClientConfig {
        let mut cfg = ClientConfig::default();
        if let Some(ms) = std::env::var("GPS_HTTP_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            cfg.timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = std::env::var("GPS_HTTP_RETRIES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
        {
            cfg.retries = n;
        }
        cfg
    }
}

impl HttpClient {
    /// Connects to a local exporter with the default 2 s timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HttpClient> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with an explicit timeout policy — the connect, read, and
    /// write timeouts all come from `cfg.timeout`, so a dead peer costs
    /// one bounded timeout instead of hanging forever.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: &ClientConfig,
    ) -> std::io::Result<HttpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, cfg.timeout)?;
        stream.set_read_timeout(Some(cfg.timeout))?;
        stream.set_write_timeout(Some(cfg.timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            carry: Vec::with_capacity(512),
        })
    }

    /// Issues one GET on the persistent connection; returns
    /// `(status, body)`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    /// Issues one POST with a `Content-Length`-framed body; returns
    /// `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        request_body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let request = match request_body {
            Some(b) => format!(
                "{method} {path} HTTP/1.1\r\nHost: gps-obs\r\nContent-Length: {}\r\n\r\n{b}",
                b.len()
            ),
            None => format!("{method} {path} HTTP/1.1\r\nHost: gps-obs\r\n\r\n"),
        };
        self.stream.write_all(request.as_bytes())?;
        let head = self.read_until_blank_line()?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let content_length: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(name, _)| name.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
            })?;
        while self.carry.len() < content_length {
            let mut chunk = [0u8; 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "body truncated",
                ));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.carry[..content_length]).into_owned();
        self.carry.drain(..content_length);
        Ok((status, body))
    }

    /// Reads (and consumes) one response head, keeping surplus bytes in
    /// the carry buffer for the body read.
    fn read_until_blank_line(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(end) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.carry[..end]).into_owned();
                self.carry.drain(..end + 4);
                return Ok(head);
            }
            let mut chunk = [0u8; 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-head",
                ));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
    }
}

/// [`HttpClient`] wrapped in the deterministic retry policy of
/// [`ClientConfig`]: reconnects on any transport error (bounded retries,
/// linear attempt-count backoff, no jitter) and transparently rolls the
/// connection before it hits the server's [`MAX_REQUESTS_PER_CONN`]
/// budget. Every reconnect-and-retry increments the global
/// `client.retries` counter. A request that still fails after the last
/// retry returns the final error.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<HttpClient>,
    served: usize,
}

impl RetryingClient {
    /// A lazy client for `addr` with the policy from
    /// [`ClientConfig::from_env`]. No connection is made until the first
    /// request.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<RetryingClient> {
        Self::with_config(addr, ClientConfig::from_env())
    }

    /// A lazy client with an explicit policy.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        cfg: ClientConfig,
    ) -> std::io::Result<RetryingClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        Ok(RetryingClient {
            addr,
            cfg,
            conn: None,
            served: 0,
        })
    }

    /// The retry policy in force.
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// GET with retries; returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request(path, None)
    }

    /// POST with retries; returns `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request(path, Some(body))
    }

    fn request(&mut self, path: &str, body: Option<&str>) -> std::io::Result<(u16, String)> {
        let mut last_err = None;
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                crate::metrics().counter("client.retries").inc();
                std::thread::sleep(self.cfg.backoff_step * attempt);
            }
            // Roll the connection before the server's per-connection
            // budget closes it mid-request.
            if self.served >= MAX_REQUESTS_PER_CONN - 1 {
                self.conn = None;
            }
            if self.conn.is_none() {
                match HttpClient::connect_with(self.addr, &self.cfg) {
                    Ok(c) => {
                        self.conn = Some(c);
                        self.served = 0;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection just established");
            let result = match body {
                Some(b) => conn.post(path, b),
                None => conn.get(path),
            };
            match result {
                Ok(reply) => {
                    self.served += 1;
                    return Ok(reply);
                }
                Err(e) => {
                    // The connection is in an unknown framing state;
                    // retry on a fresh one.
                    self.conn = None;
                    self.served = 0;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("request failed")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_and_label_mapping() {
        assert_eq!(sanitize_name("sim.measured_slots"), "sim_measured_slots");
        assert_eq!(sanitize_name("9lives"), "_lives");
        let (base, labels) = split_labels("sim.session.backlog_mean{session=2,node=a}");
        assert_eq!(base, "sim.session.backlog_mean");
        assert_eq!(labels, vec![("session", "2"), ("node", "a")]);
        let (base, labels) = split_labels("plain");
        assert_eq!(base, "plain");
        assert!(labels.is_empty());
        assert_eq!(
            render_labels(&[("session", "2")], Some(("le", "+Inf"))),
            "{session=\"2\",le=\"+Inf\"}"
        );
    }

    #[test]
    fn prom_float_spellings() {
        assert_eq!(prom_f64(1.5), "1.5");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
    }

    /// Golden exposition of a hand-built registry: every metric family
    /// kind, labels, histogram buckets, and summary quantiles, pinned
    /// byte-for-byte.
    #[test]
    fn prometheus_text_golden() {
        let r = Registry::new();
        // A registry name already carrying `_total` must not be
        // double-suffixed.
        r.counter("ingest_total").add(9);
        r.counter("sim.measured_slots").add(240);
        r.counter(&crate::metrics::labeled(
            "sim.session.delay_samples",
            &[("session", "0")],
        ))
        .add(12);
        r.gauge(&crate::metrics::labeled(
            "sim.session.throughput",
            &[("session", "0")],
        ))
        .set(0.25);
        let h = r.histogram("queue.depth", 0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.5, 3.5, 9.0] {
            h.observe(x);
        }
        // Tiny HDR config (4 unit buckets, 2 sub-buckets per octave,
        // saturation at 48) so the expected `le` boundaries are easy to
        // derive by hand: 100 clamps into the [48,64) top bucket.
        let hdr = r.hdr_with("rpc.latency_ns", || {
            crate::hdrhist::HdrHistogram::with_config(2, 48)
        });
        for v in [1u64, 5, 7, 100] {
            hdr.observe(v);
        }
        let s = r.summary("delay");
        for _ in 0..5 {
            s.observe(2.0);
        }
        r.record_span("sim/step", 100);
        r.record_span("sim/step", 300);
        let text = to_prometheus_text(&r.snapshot());
        let expected = "\
# TYPE ingest_total counter
ingest_total 9
# TYPE sim_measured_slots_total counter
sim_measured_slots_total 240
# TYPE sim_session_delay_samples_total counter
sim_session_delay_samples_total{session=\"0\"} 12
# TYPE sim_session_throughput gauge
sim_session_throughput{session=\"0\"} 0.25
# TYPE queue_depth histogram
queue_depth_bucket{le=\"1\"} 1
queue_depth_bucket{le=\"2\"} 3
queue_depth_bucket{le=\"3\"} 3
queue_depth_bucket{le=\"4\"} 4
queue_depth_bucket{le=\"+Inf\"} 5
queue_depth_count 5
# TYPE rpc_latency_ns histogram
rpc_latency_ns_bucket{le=\"1\"} 1
rpc_latency_ns_bucket{le=\"5\"} 2
rpc_latency_ns_bucket{le=\"7\"} 3
rpc_latency_ns_bucket{le=\"63\"} 4
rpc_latency_ns_bucket{le=\"+Inf\"} 4
rpc_latency_ns_sum 61
rpc_latency_ns_count 4
# TYPE delay summary
delay{quantile=\"0.5\"} 2
delay{quantile=\"0.9\"} 2
delay{quantile=\"0.99\"} 2
delay_sum 10
delay_count 5
# TYPE obs_span_samples gauge
obs_span_samples{path=\"sim/step\"} 2
# TYPE obs_span_total_ns gauge
obs_span_total_ns{path=\"sim/step\"} 400
# TYPE obs_span_mean_ns gauge
obs_span_mean_ns{path=\"sim/step\"} 200
# TYPE obs_span_min_ns gauge
obs_span_min_ns{path=\"sim/step\"} 100
# TYPE obs_span_max_ns gauge
obs_span_max_ns{path=\"sim/step\"} 300
";
        assert_eq!(text, expected);
    }

    #[test]
    fn server_round_trip_and_shutdown() {
        let r = Registry::new();
        r.counter("hits").add(3);
        let exporter = Exporter::serve("127.0.0.1:0", r.clone()).expect("bind");
        let addr = exporter.local_addr();

        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(addr, "/health").unwrap();
        assert_eq!(status, 200);
        let health = crate::json::parse(&body).expect("health json parses");
        assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(
            health.get("service").and_then(|v| v.as_str()),
            Some("gps-obs")
        );
        assert!(health
            .get("uptime_seconds")
            .and_then(|v| v.as_u64())
            .is_some());
        assert!(health.get("requests").and_then(|v| v.as_u64()).unwrap_or(0) >= 1);

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE hits_total counter"));
        assert!(body.contains("hits_total 3"));

        let (status, body) = http_get(addr, "/metrics.json").unwrap();
        assert_eq!(status, 200);
        let parsed = crate::json::parse(&body).expect("snapshot json parses");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("hits"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );

        crate::progress::global_progress().begin_campaign("exporter_test", 10);
        crate::progress::global_progress().add_done(4);
        let (status, body) = http_get(addr, "/progress").unwrap();
        assert_eq!(status, 200);
        let doc = crate::json::parse(&body).expect("progress json parses");
        assert_eq!(
            doc.get("campaign").and_then(|v| v.as_str()),
            Some("exporter_test")
        );
        assert_eq!(doc.get("total").and_then(|v| v.as_u64()), Some(10));
        assert_eq!(doc.get("done").and_then(|v| v.as_u64()), Some(4));

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        // Requests were counted on the live registry.
        assert!(r.counter("obs.exporter.requests").get() >= 4);

        exporter.shutdown();
        // The port is released: a fresh bind to the same address works.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let r = Registry::new();
        let exporter = Exporter::serve("127.0.0.1:0", r.clone()).expect("bind");
        let addr = exporter.local_addr();

        let before = r.counter("obs.exporter.requests").get();
        let mut client = HttpClient::connect(addr).unwrap();
        for _ in 0..10 {
            let (status, body) = client.get("/healthz").unwrap();
            assert_eq!((status, body.as_str()), (200, "ok\n"));
        }
        // All ten requests rode one connection and were all counted.
        assert_eq!(r.counter("obs.exporter.requests").get(), before + 10);

        exporter.shutdown();
    }

    #[test]
    fn connection_request_budget_is_enforced() {
        let exporter = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = exporter.local_addr();

        let mut client = HttpClient::connect(addr).unwrap();
        for i in 0..MAX_REQUESTS_PER_CONN {
            let (status, _) = client.get("/health").unwrap_or_else(|e| {
                panic!("request {i} within budget failed: {e}");
            });
            assert_eq!(status, 200);
        }
        // The server closed after the budgeted request; one more on the
        // same connection cannot be answered.
        assert!(client.get("/health").is_err());
        // A fresh connection works fine.
        let mut fresh = HttpClient::connect(addr).unwrap();
        assert_eq!(fresh.get("/health").unwrap().0, 200);

        exporter.shutdown();
    }

    #[test]
    fn pipelined_requests_are_served_in_order() {
        let exporter = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = exporter.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        // Two requests in one write; the second asks to close so the
        // server ends the connection after answering both.
        let requests = "GET /health HTTP/1.1\r\nHost: t\r\n\r\n\
                        GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
        stream.write_all(requests.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let statuses: Vec<&str> = response
            .lines()
            .filter(|l| l.starts_with("HTTP/1.1 "))
            .collect();
        assert_eq!(statuses, vec!["HTTP/1.1 200 OK", "HTTP/1.1 404 Not Found"]);
        assert!(response.contains("Connection: keep-alive"));
        assert!(response.contains("Connection: close"));

        exporter.shutdown();
    }

    #[test]
    fn custom_routes_mount_beside_builtins() {
        let r = Registry::new();
        r.counter("hits").add(7);
        let handler: RouteHandler = Arc::new(|path: &str| match path {
            "/echo" => Some(RouteResponse::json(200, "{\"ok\":true}")),
            p if p.starts_with("/echo?") => Some(RouteResponse::text(200, p.to_string())),
            _ => None,
        });
        let exporter = Exporter::serve_with_routes("127.0.0.1:0", r, handler).expect("bind");
        let addr = exporter.local_addr();

        let (status, body) = http_get(addr, "/echo").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));
        // The query string reaches the handler verbatim.
        let (status, body) = http_get(addr, "/echo?x=1").unwrap();
        assert_eq!((status, body.as_str()), (200, "/echo?x=1"));
        // Built-ins still win, unclaimed paths still 404.
        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("hits_total 7"));
        assert_eq!(http_get(addr, "/unclaimed").unwrap().0, 404);

        exporter.shutdown();
    }

    #[test]
    fn keep_alive_header_parsing() {
        assert!(wants_keep_alive("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(!wants_keep_alive(
            "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        ));
        assert!(!wants_keep_alive(
            "GET / HTTP/1.1\r\nCONNECTION:  CLOSE \r\n\r\n"
        ));
        assert!(wants_keep_alive(
            "GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
        ));
        assert!(!wants_keep_alive("GET / HTTP/1.0\r\n\r\n"));
        assert!(!wants_keep_alive(""));
    }

    #[test]
    fn stalled_connection_does_not_wedge_other_clients() {
        let exporter = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = exporter.local_addr();

        // Open a connection and send nothing: it sits in its handler
        // thread waiting out READ_TIMEOUT (2 s).
        let stalled = TcpStream::connect(addr).unwrap();

        // Another client must still be served well before that timeout
        // elapses — the serial loop this replaced would block ~2 s here.
        let start = std::time::Instant::now();
        let (status, body) = http_get(addr, "/healthz").unwrap();
        let elapsed = start.elapsed();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        assert!(
            elapsed < Duration::from_millis(1500),
            "stalled peer delayed a healthy scrape by {elapsed:?}"
        );

        drop(stalled);
        exporter.shutdown();
    }

    #[test]
    fn overlong_request_line_gets_414() {
        let exporter = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = exporter.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        let request = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4 * 1024));
        stream.write_all(request.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 414 "),
            "got: {}",
            response.lines().next().unwrap_or("")
        );

        exporter.shutdown();
    }

    #[test]
    fn oversized_request_head_gets_431() {
        let exporter = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = exporter.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        // Short request line, then enough short header lines to blow the
        // 8 KiB head cap before the terminating blank line.
        let mut request = String::from("GET /health HTTP/1.1\r\n");
        for i in 0..200 {
            request.push_str(&format!("X-Pad-{i}: {}\r\n", "b".repeat(64)));
        }
        request.push_str("\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 431 "),
            "got: {}",
            response.lines().next().unwrap_or("")
        );

        exporter.shutdown();
    }

    #[test]
    fn request_head_split_across_reads_hits_carry_path() {
        // The head arrives in three TCP segments, each smaller than a
        // request line; the server must keep accumulating in the carry
        // buffer instead of treating a partial head as a request.
        let r = Registry::new();
        let exporter = Exporter::serve("127.0.0.1:0", r.clone()).expect("bind");
        let addr = exporter.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        stream.set_nodelay(true).unwrap();
        for part in ["GET /hea", "lthz HTTP/1.1\r\nHost: t\r\nConnec", ""] {
            stream.write_all(part.as_bytes()).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }
        stream.write_all(b"tion: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 200 OK"),
            "got: {}",
            response.lines().next().unwrap_or("")
        );
        assert!(response.ends_with("ok\n"));
        assert_eq!(r.counter("obs.exporter.requests").get(), 1);

        exporter.shutdown();
    }

    #[test]
    fn two_pipelined_requests_in_one_segment_use_carry() {
        // Both heads land in a single read; the second must be served
        // entirely from the carry buffer (no further socket read), and
        // both must be counted.
        let r = Registry::new();
        let exporter = Exporter::serve("127.0.0.1:0", r.clone()).expect("bind");
        let addr = exporter.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        let requests = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                        GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
        stream.write_all(requests.as_bytes()).unwrap();
        // Nothing more is written: if the server failed to carry the
        // second head it would stall on read until timeout and close
        // without the second response.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let oks = response.matches("HTTP/1.1 200 OK").count();
        assert_eq!(oks, 2, "expected both pipelined responses: {response}");
        assert_eq!(response.matches("ok\n").count(), 2);
        assert_eq!(r.counter("obs.exporter.requests").get(), 2);

        exporter.shutdown();
    }

    #[test]
    fn telemetry_counts_routes_latency_and_serves_slo() {
        let r = Registry::new();
        let handler: RouteHandler = Arc::new(|path: &str| {
            if !path.starts_with("/admit") {
                return None;
            }
            // The request ID must be visible to downstream code on the
            // dispatch thread.
            let id = current_request_id().expect("request id set during dispatch");
            Some(RouteResponse::json(200, format!("{{\"id\":{id}}}")))
        });
        let cfg = TelemetryConfig::new("svc-test")
            .with_slos(vec![crate::slo::SloSpec::availability("avail", 0.999)]);
        let exporter = Exporter::serve_with_telemetry("127.0.0.1:0", r.clone(), Some(handler), cfg)
            .expect("bind");
        let addr = exporter.local_addr();

        // IDs are monotonically assigned in request order on one
        // connection.
        let mut client = HttpClient::connect(addr).unwrap();
        let (_, first) = client.get("/admit?class=0").unwrap();
        let (_, second) = client.get("/admit?class=1").unwrap();
        let id_of = |body: &str| {
            crate::json::parse(body)
                .unwrap()
                .get("id")
                .and_then(|v| v.as_u64())
                .unwrap()
        };
        assert_eq!(id_of(&second), id_of(&first) + 1);
        let (status, _) = client.get("/missing").unwrap();
        assert_eq!(status, 404);
        // No request in flight on this thread.
        assert_eq!(current_request_id(), None);

        // Health names the service; /slo serves budget + burn rates.
        let (_, health) = client.get("/health").unwrap();
        let doc = crate::json::parse(&health).unwrap();
        assert_eq!(
            doc.get("service").and_then(|v| v.as_str()),
            Some("svc-test")
        );
        let (status, slo) = client.get("/slo").unwrap();
        assert_eq!(status, 200);
        let doc = crate::json::parse(&slo).unwrap();
        assert_eq!(
            doc.get("service").and_then(|v| v.as_str()),
            Some("svc-test")
        );
        let slos = match doc.get("slos") {
            Some(crate::json::Json::Arr(items)) => items.clone(),
            other => panic!("slos not an array: {other:?}"),
        };
        assert_eq!(slos.len(), 1);
        assert!(slos[0].get("budget_remaining").is_some());
        assert!(slos[0]
            .get("fast")
            .and_then(|w| w.get("burn_rate"))
            .is_some());

        // The Prometheus surface carries per-route requests counters and
        // per-route HDR `le` buckets; the query string is stripped and
        // unmatched paths collapse to one label.
        let (_, text) = client.get("/metrics").unwrap();
        assert!(text.contains("obs_http_requests_total{route=\"/admit\",status=\"200\"} 2"));
        assert!(text.contains("obs_http_requests_total{route=\"unmatched\",status=\"404\"} 1"));
        assert!(text.contains("obs_http_request_duration_ns_bucket{route=\"/admit\",le=\""));
        assert!(text.contains("obs_http_request_duration_ns_count{route=\"/admit\"} 2"));
        assert!(text.contains("obs_http_in_flight 1")); // the /metrics request itself
        assert!(text.contains("obs_http_connections_total 1"));
        drop(client);

        exporter.shutdown();
        // Without telemetry, /slo falls through to 404.
        let plain = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        assert_eq!(http_get(plain.local_addr(), "/slo").unwrap().0, 404);
        plain.shutdown();
    }

    #[test]
    fn post_routes_round_trip_with_bodies() {
        let handler: RequestHandler = Arc::new(|req: &HttpRequest| match req.path.as_str() {
            "/echo" if req.method == "POST" => {
                Some(RouteResponse::text(200, format!("got:{}", req.body)))
            }
            "/info" if req.method == "GET" => Some(RouteResponse::text(200, "info")),
            _ => None,
        });
        let exporter =
            Exporter::serve_requests("127.0.0.1:0", Registry::new(), handler, None).expect("bind");
        let addr = exporter.local_addr();

        let mut client = HttpClient::connect(addr).unwrap();
        // POST bodies reach the handler, keep-alive framing intact:
        // mixed POSTs and GETs ride the same connection.
        let (status, body) = client.post("/echo", "hello world").unwrap();
        assert_eq!((status, body.as_str()), (200, "got:hello world"));
        let (status, body) = client.get("/info").unwrap();
        assert_eq!((status, body.as_str()), (200, "info"));
        let (status, body) = client.post("/echo", "{\"x\":[1,2]}").unwrap();
        assert_eq!((status, body.as_str()), (200, "got:{\"x\":[1,2]}"));
        // Builtins still answer GET on the same server.
        assert_eq!(client.get("/healthz").unwrap().0, 200);
        // POST to an unclaimed path is 404, not 405.
        assert_eq!(client.post("/nope", "x").unwrap().0, 404);
        drop(client);

        // Without a request handler, POST stays 405 as before.
        let plain = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let mut c = HttpClient::connect(plain.local_addr()).unwrap();
        assert_eq!(c.post("/metrics", "x").unwrap().0, 405);
        plain.shutdown();
        exporter.shutdown();
    }

    #[test]
    fn oversized_post_body_gets_413() {
        let handler: RequestHandler =
            Arc::new(|_req: &HttpRequest| Some(RouteResponse::text(200, "ok")));
        let exporter =
            Exporter::serve_requests("127.0.0.1:0", Registry::new(), handler, None).expect("bind");
        let addr = exporter.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        // Announce a body over the cap; the server must refuse before
        // reading it.
        let head = format!(
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        stream.write_all(head.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 413 "),
            "expected 413, got: {}",
            response.lines().next().unwrap_or("")
        );

        exporter.shutdown();
    }

    #[test]
    fn client_config_env_knobs_parse() {
        // Uses explicit values rather than set_var: the suite is
        // multi-threaded and env mutation races other tests.
        let cfg = ClientConfig::default();
        assert_eq!(cfg.timeout, Duration::from_secs(2));
        assert_eq!(cfg.retries, 2);
        let fast = ClientConfig {
            timeout: Duration::from_millis(100),
            retries: 5,
            ..ClientConfig::default()
        };
        assert_eq!(fast.timeout, Duration::from_millis(100));
        assert_eq!(fast.retries, 5);
    }

    #[test]
    fn retrying_client_survives_connection_budget_and_counts_retries() {
        let exporter = Exporter::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = exporter.local_addr();
        let mut client = RetryingClient::with_config(addr, ClientConfig::default()).unwrap();
        // Cross the per-connection request budget several times over: the
        // client reconnects proactively, so no request observes an error.
        for _ in 0..(2 * MAX_REQUESTS_PER_CONN + 7) {
            let (status, body) = client.get("/healthz").unwrap();
            assert_eq!((status, body.as_str()), (200, "ok\n"));
        }
        exporter.shutdown();

        // Against a dead peer the client fails bounded-fast and counts
        // each retry.
        let before = crate::metrics().counter("client.retries").get();
        let cfg = ClientConfig {
            timeout: Duration::from_millis(50),
            retries: 2,
            backoff_step: Duration::from_millis(1),
        };
        let mut dead = RetryingClient::with_config(addr, cfg).unwrap();
        assert!(dead.get("/healthz").is_err());
        assert_eq!(crate::metrics().counter("client.retries").get(), before + 2);
    }

    #[test]
    fn shared_slo_merges_http_and_host_events() {
        let r = Registry::new();
        let slo = Arc::new(SloSet::new(vec![crate::slo::SloSpec::availability(
            "shard-completion",
            0.9,
        )
        .for_route("shard")]));
        let cfg = TelemetryConfig::new("campaignd-test").with_shared_slo(Arc::clone(&slo));
        let exporter =
            Exporter::serve_with_telemetry("127.0.0.1:0", r.clone(), None, cfg).expect("bind");
        let addr = exporter.local_addr();

        // The host records synthetic (non-HTTP) events into the same set
        // the exporter serves at /slo.
        slo.record(&r, 0, "shard", 200, 0);
        slo.record(&r, 1, "shard", 503, 0);
        let (status, body) = http_get(addr, "/slo").unwrap();
        assert_eq!(status, 200);
        let doc = crate::json::parse(&body).unwrap();
        let slos = match doc.get("slos") {
            Some(crate::json::Json::Arr(items)) => items.clone(),
            other => panic!("slos not an array: {other:?}"),
        };
        assert_eq!(slos.len(), 1);
        assert_eq!(
            slos[0].get("name").and_then(|v| v.as_str()),
            Some("shard-completion")
        );
        // One good + one bad event reached the shared tracker.
        assert_eq!(slos[0].get("good").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(slos[0].get("bad").and_then(|v| v.as_u64()), Some(1));

        exporter.shutdown();
    }
}
