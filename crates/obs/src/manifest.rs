//! Run manifests: one small JSON file per experiment campaign recording
//! its provenance — seed, configuration, and what it produced — so a
//! `results/` directory is self-describing long after the terminal
//! transcript is gone.
//!
//! The manifest is deterministic by construction: configuration keys are
//! sorted, outputs are listed in the order they were declared, and the
//! only wall-clock datum lives under the single `"timing"` key, which
//! comparison tooling strips (same convention as the journal's `t_us`).

use crate::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Provenance record for one campaign run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    campaign: String,
    seed: Option<u64>,
    config: BTreeMap<String, Json>,
    outputs: Vec<(String, u64)>,
    journal: Option<String>,
    trace: Option<String>,
    wall_ms: Option<f64>,
}

impl RunManifest {
    /// Starts a manifest for the campaign named `campaign` (the binary
    /// name by convention).
    pub fn new(campaign: &str) -> RunManifest {
        RunManifest {
            campaign: campaign.to_string(),
            seed: None,
            config: BTreeMap::new(),
            outputs: Vec::new(),
            journal: None,
            trace: None,
            wall_ms: None,
        }
    }

    /// Records the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Records one configuration parameter (keys are emitted sorted).
    pub fn param(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.config.insert(key.to_string(), value.into());
        self
    }

    /// Records an output artifact and its row/record count.
    pub fn output(&mut self, file: &str, rows: u64) {
        self.outputs.push((file.to_string(), rows));
    }

    /// Records the journal file this run wrote, if any.
    pub fn journal(&mut self, file: &str) {
        self.journal = Some(file.to_string());
    }

    /// Records the flight-recorder trace file this run exported, if any.
    /// The key is omitted entirely when tracing was off, so untraced
    /// manifests are byte-identical to those from before tracing existed.
    pub fn trace(&mut self, file: &str) {
        self.trace = Some(file.to_string());
    }

    /// Records elapsed wall-clock milliseconds (the one timing field).
    pub fn wall_ms(&mut self, ms: f64) {
        self.wall_ms = Some(ms);
    }

    /// The campaign name.
    pub fn campaign_name(&self) -> &str {
        &self.campaign
    }

    /// Renders the manifest as JSON.
    pub fn to_json(&self) -> String {
        let mut root: Vec<(String, Json)> = vec![
            ("campaign".into(), Json::Str(self.campaign.clone())),
            (
                "seed".into(),
                match self.seed {
                    Some(s) => Json::U64(s),
                    None => Json::Null,
                },
            ),
            (
                "config".into(),
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
            (
                "outputs".into(),
                Json::Arr(
                    self.outputs
                        .iter()
                        .map(|(file, rows)| {
                            Json::Obj(vec![
                                ("file".into(), Json::Str(file.clone())),
                                ("rows".into(), Json::U64(*rows)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "journal".into(),
                match &self.journal {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
        ];
        if let Some(f) = &self.trace {
            root.push(("trace".into(), Json::Str(f.clone())));
        }
        if let Some(ms) = self.wall_ms {
            root.push((
                "timing".into(),
                Json::Obj(vec![("wall_ms".into(), Json::F64(ms))]),
            ));
        }
        let mut text = Json::Obj(root).to_compact();
        text.push('\n');
        text
    }

    /// Writes `<dir>/<campaign>_manifest.json` and returns the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}_manifest.json", self.campaign));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("validate_single")
            .seed(20260704)
            .param("measure", 4_000_000u64)
            .param("warmup", 50_000u64)
            .param("capacity", 1.0)
            .param("set", "Set1");
        m.output("validate_single.csv", 560);
        m.journal("validate_single_journal.ndjson");
        m
    }

    #[test]
    fn manifest_parses_and_carries_provenance() {
        let m = sample();
        let v = json::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("campaign").unwrap().as_str(), Some("validate_single"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(20260704));
        let cfg = v.get("config").unwrap();
        assert_eq!(cfg.get("measure").unwrap().as_u64(), Some(4_000_000));
        assert_eq!(cfg.get("capacity").unwrap().as_f64(), Some(1.0));
        assert_eq!(cfg.get("set").unwrap().as_str(), Some("Set1"));
        match v.get("outputs").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("rows").unwrap().as_u64(), Some(560));
            }
            other => panic!("outputs not an array: {other:?}"),
        }
    }

    #[test]
    fn deterministic_without_timing() {
        assert_eq!(sample().to_json(), sample().to_json());
        let mut a = sample();
        a.wall_ms(12.5);
        let mut b = sample();
        b.wall_ms(99.0);
        // Identical except under the "timing" key.
        let strip = |m: &RunManifest| {
            let text = m.to_json();
            text[..text.find(",\"timing\"").unwrap()].to_string()
        };
        assert_eq!(strip(&a), strip(&b));
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn trace_key_present_only_when_traced() {
        assert!(!sample().to_json().contains("\"trace\""));
        let mut t = sample();
        t.trace("validate_single_trace.json");
        let v = json::parse(&t.to_json()).unwrap();
        assert_eq!(
            v.get("trace").unwrap().as_str(),
            Some("validate_single_trace.json")
        );
    }

    #[test]
    fn config_keys_sorted() {
        let m = RunManifest::new("c")
            .param("zeta", 1u64)
            .param("alpha", 2u64);
        let text = m.to_json();
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
    }

    #[test]
    fn writes_named_file() {
        let dir = std::env::temp_dir().join(format!("gps_obs_manifest_{}", std::process::id()));
        let path = sample().write_to(&dir).unwrap();
        assert!(path.ends_with("validate_single_manifest.json"));
        assert!(json::parse(&std::fs::read_to_string(&path).unwrap()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
