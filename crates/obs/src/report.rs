//! Static-HTML results dashboard: renders campaign metrics snapshots,
//! run manifests, bench results, and bound-vs-simulation curves into one
//! self-contained `dashboard.html` — inline SVG only, no scripts, no
//! external assets, so the artifact is committable and diffs cleanly.
//!
//! Everything here is a pure function of its inputs: same parsed JSON
//! and curve data, same bytes out. The `report` experiment binary owns
//! the filesystem scan; this module owns layout and drawing.
//!
//! Chart conventions (shared with the repo's ASCII plots): tail curves
//! are drawn on a log₁₀ y-axis with empirical data first and analytic
//! bounds after, categorical palette slots assigned in fixed order, a
//! legend plus per-point `<title>` tooltips (the no-JS hover layer), and
//! muted grid/axis chrome under the data ink.

use crate::json::Json;
use std::fmt::Write as _;

/// Categorical palette, light-mode steps (slots assigned in fixed
/// order, never cycled; charts here use at most four series).
const SERIES_LIGHT: [&str; 4] = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100"];
/// The same four slots stepped for the dark surface.
const SERIES_DARK: [&str; 4] = ["#3987e5", "#d95926", "#199e70", "#c98500"];

/// One named curve on a chart.
#[derive(Debug, Clone)]
pub struct CurveSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// One chart: a handful of curves over a shared x-axis.
#[derive(Debug, Clone)]
pub struct CurveChart {
    /// Chart heading.
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Curves, palette slots assigned in order.
    pub series: Vec<CurveSeries>,
    /// Log₁₀ y-axis (tail probabilities) vs linear.
    pub log_y: bool,
}

/// One bench measurement (nanoseconds per iteration).
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Bench name within the suite.
    pub name: String,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 10th percentile.
    pub p10_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
}

/// One bench suite (`results/bench_<name>.json`).
#[derive(Debug, Clone)]
pub struct BenchSuite {
    /// Suite name.
    pub name: String,
    /// Entries in file order.
    pub entries: Vec<BenchEntry>,
}

/// One campaign: its manifest and/or metrics snapshot, as parsed JSON.
#[derive(Debug, Clone)]
pub struct CampaignSection {
    /// Campaign name (`validate_single`, …).
    pub name: String,
    /// Parsed `<name>_manifest.json`, when present.
    pub manifest: Option<Json>,
    /// Parsed `<name>_metrics.json`, when present.
    pub metrics: Option<Json>,
}

/// One executed interval on a worker lane, decoded from a paired
/// begin/end pair of Chrome trace events.
#[derive(Debug, Clone)]
pub struct TraceSlice {
    /// Event name (`chunk`, `sim/single_node_campaign`, …).
    pub name: String,
    /// Start, microseconds since the timeline origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// One worker lane of a campaign timeline.
#[derive(Debug, Clone)]
pub struct TraceLane {
    /// Lane label (`main`, `worker-1`, …).
    pub name: String,
    /// Chrome `tid` the lane was recorded under.
    pub tid: u64,
    /// Executed slices in start order.
    pub slices: Vec<TraceSlice>,
}

/// One campaign's flight-recorder timeline (`<name>_trace.json`).
#[derive(Debug, Clone)]
pub struct TraceTimeline {
    /// Campaign the trace belongs to.
    pub campaign: String,
    /// Lanes sorted by `tid` (main first, then workers).
    pub lanes: Vec<TraceLane>,
    /// Horizontal extent of the timeline, microseconds.
    pub span_us: f64,
    /// Events the bounded ring dropped while recording.
    pub dropped: u64,
}

/// One session row of the distributed overload panel.
#[derive(Debug, Clone)]
pub struct OverloadSession {
    /// Display label (`session 1`, …).
    pub label: String,
    /// Measured long-run throughput from the merged campaign.
    pub throughput: f64,
    /// GPS guaranteed rate `φᵢ/Σφ · C`.
    pub guaranteed: f64,
    /// True for the hostile session behind the shedding policer.
    pub attack: bool,
}

/// The distributed overload-campaign panel: tail charts for the
/// protected sessions against their Theorem-10 certificates, the
/// per-session throughput-vs-guarantee table, the attack shed fractions,
/// and the coordinator's orchestration counters.
#[derive(Debug, Clone, Default)]
pub struct OverloadPanel {
    /// Scenario name (`overload`).
    pub scenario: String,
    /// Tail charts (protected session vs certificate, attack session).
    pub charts: Vec<CurveChart>,
    /// Per-session throughput summary, in session order.
    pub sessions: Vec<OverloadSession>,
    /// `(measured, analytic)` shed fraction of the attack session.
    pub shed: Option<(f64, f64)>,
    /// Coordinator orchestration counters (leases, expiries, …).
    pub orchestration: Vec<(String, String)>,
}

/// Everything the dashboard shows.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    /// Bound-vs-simulation charts, in display order.
    pub charts: Vec<CurveChart>,
    /// Campaign sections, in display order.
    pub campaigns: Vec<CampaignSection>,
    /// Bench suites, in display order.
    pub benches: Vec<BenchSuite>,
    /// Flight-recorder timelines, in display order.
    pub timelines: Vec<TraceTimeline>,
    /// Distributed overload-campaign panel (`results/campaignd_overload.csv`
    /// plus the coordinator manifest), when present.
    pub overload: Option<OverloadPanel>,
    /// Admission-service region snapshot (`results/admission_region.json`,
    /// the `/region` body captured by `admitd --replay`), when present.
    pub admission: Option<Json>,
    /// Service-health snapshots (`results/service_health.json` from
    /// `admitd --replay --out-service`, `results/*_service.json` from the
    /// daemons' `--out-service`): SLO statuses, per-route request
    /// counters, and HDR latency histograms, one entry per service.
    pub services: Vec<Json>,
}

/// Escapes text for HTML body and attribute positions.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Compact deterministic number rendering for labels and table cells.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "–".to_string();
    }
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.2e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        let s = format!("{v:.4}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    }
}

/// Nanoseconds, scaled to a readable unit.
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "–".to_string()
    } else if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

// ---------------------------------------------------------------------
// SVG charts

const CHART_W: f64 = 540.0;
const CHART_H: f64 = 230.0;
const MARGIN_L: f64 = 52.0;
const MARGIN_R: f64 = 14.0;
const MARGIN_T: f64 = 12.0;
const MARGIN_B: f64 = 32.0;
/// Probabilities below this clamp to the chart floor on log axes.
const LOG_FLOOR: f64 = 1e-10;

fn fmt_coord(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders one curve chart as an inline SVG string.
pub fn svg_curve_chart(chart: &CurveChart) -> String {
    let pts: Vec<(f64, f64)> = chart
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() {
        return "<p class=\"empty\">no data</p>".to_string();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, _) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
    }
    if x_max <= x_min {
        x_max = x_min + 1.0;
    }

    // The y transform: log₁₀ with a floor, or linear from 0.
    let to_ly = |y: f64| -> f64 {
        if chart.log_y {
            y.max(LOG_FLOOR).log10()
        } else {
            y
        }
    };
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, y) in &pts {
        let ly = to_ly(y);
        y_min = y_min.min(ly);
        y_max = y_max.max(ly);
    }
    if chart.log_y {
        y_min = y_min.floor();
        y_max = y_max.ceil().max(y_min + 1.0);
    } else {
        y_min = y_min.min(0.0);
        if y_max <= y_min {
            y_max = y_min + 1.0;
        }
    }

    let plot_w = CHART_W - MARGIN_L - MARGIN_R;
    let plot_h = CHART_H - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (to_ly(y) - y_min) / (y_max - y_min)) * plot_h;

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg viewBox=\"0 0 {CHART_W:.0} {CHART_H:.0}\" width=\"{CHART_W:.0}\" \
         height=\"{CHART_H:.0}\" role=\"img\" aria-label=\"{}\">",
        html_escape(&chart.title)
    );

    // Horizontal gridlines + y tick labels.
    let ticks: Vec<f64> = if chart.log_y {
        let decades = (y_max - y_min) as i64;
        let step = (decades as f64 / 6.0).ceil().max(1.0) as i64;
        (0..=decades)
            .step_by(step as usize)
            .map(|d| y_min + d as f64)
            .collect()
    } else {
        (0..=4)
            .map(|i| y_min + (y_max - y_min) * i as f64 / 4.0)
            .collect()
    };
    for &t in &ticks {
        let y = MARGIN_T + (1.0 - (t - y_min) / (y_max - y_min)) * plot_h;
        let _ = write!(
            svg,
            "<line class=\"grid\" x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"/>",
            fmt_coord(MARGIN_L),
            fmt_coord(y),
            fmt_coord(CHART_W - MARGIN_R),
            fmt_coord(y)
        );
        let label = if chart.log_y {
            format!("1e{}", t as i64)
        } else {
            fmt_num(t)
        };
        let _ = write!(
            svg,
            "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            fmt_coord(MARGIN_L - 6.0),
            fmt_coord(y + 3.5),
            html_escape(&label)
        );
    }
    // X axis baseline + ticks.
    let base_y = MARGIN_T + plot_h;
    let _ = write!(
        svg,
        "<line class=\"axis\" x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"/>",
        fmt_coord(MARGIN_L),
        fmt_coord(base_y),
        fmt_coord(CHART_W - MARGIN_R),
        fmt_coord(base_y)
    );
    for i in 0..=4 {
        let xv = x_min + (x_max - x_min) * i as f64 / 4.0;
        let _ = write!(
            svg,
            "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            fmt_coord(sx(xv)),
            fmt_coord(base_y + 14.0),
            html_escape(&fmt_num(xv))
        );
    }
    let _ = write!(
        svg,
        "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
        fmt_coord(MARGIN_L + plot_w / 2.0),
        fmt_coord(CHART_H - 4.0),
        html_escape(&chart.x_label)
    );

    // Data ink: one 2px polyline per series plus hoverable point markers
    // carrying native tooltips.
    for (si, s) in chart.series.iter().enumerate().take(SERIES_LIGHT.len()) {
        let finite: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if finite.len() >= 2 {
            let path: Vec<String> = finite
                .iter()
                .map(|&(x, y)| format!("{},{}", fmt_coord(sx(x)), fmt_coord(sy(y))))
                .collect();
            let _ = write!(
                svg,
                "<polyline class=\"s{si}\" fill=\"none\" stroke-width=\"2\" \
                 stroke-linejoin=\"round\" points=\"{}\"/>",
                path.join(" ")
            );
        }
        for &(x, y) in &finite {
            let _ = write!(
                svg,
                "<circle class=\"s{si} pt\" cx=\"{}\" cy=\"{}\" r=\"2.5\">\
                 <title>{}: ({}, {})</title></circle>",
                fmt_coord(sx(x)),
                fmt_coord(sy(y)),
                html_escape(&s.label),
                fmt_num(x),
                fmt_num(y)
            );
        }
    }
    svg.push_str("</svg>");

    // Legend: chip carries the hue, text stays in ink tokens.
    let mut legend = String::from("<div class=\"legend\">");
    for (si, s) in chart.series.iter().enumerate().take(SERIES_LIGHT.len()) {
        let _ = write!(
            legend,
            "<span class=\"key\"><span class=\"chip s{si}bg\"></span>{}</span>",
            html_escape(&s.label)
        );
    }
    legend.push_str("</div>");

    format!("{legend}{svg}")
}

// ---------------------------------------------------------------------
// Flight-recorder timelines

const TL_W: f64 = 860.0;
const TL_LANE_H: f64 = 18.0;
const TL_GAP: f64 = 5.0;
/// Left margin: lane labels.
const TL_L: f64 = 84.0;
/// Right margin: the per-lane utilization bar.
const TL_R: f64 = 150.0;
const TL_T: f64 = 8.0;
const TL_B: f64 = 26.0;
const UTIL_BAR_W: f64 = 90.0;

/// Decodes a timing-mode Chrome trace document (`<campaign>_trace.json`)
/// into a [`TraceTimeline`]: `thread_name` metadata labels the lanes and
/// begin/end pairs become slices, matched per `tid` with a stack (the
/// recorder emits properly nested events per lane). Returns `None` for
/// counts-mode digests and anything else without a `traceEvents` array.
pub fn timeline_from_chrome_trace(doc: &Json) -> Option<TraceTimeline> {
    use std::collections::BTreeMap;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return None;
    };
    let other = doc.get("otherData");
    let campaign = other
        .and_then(|o| o.get("campaign"))
        .and_then(|v| v.as_str())
        .unwrap_or("")
        .to_string();
    let dropped = other
        .and_then(|o| o.get("dropped"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);

    let mut lane_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    let mut slices: BTreeMap<u64, Vec<TraceSlice>> = BTreeMap::new();
    let (mut origin, mut end) = (f64::INFINITY, f64::NEG_INFINITY);
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let tid = e.get("tid").and_then(|v| v.as_u64()).unwrap_or(0);
        if ph == "M" {
            if e.get("name").and_then(|v| v.as_str()) == Some("thread_name") {
                if let Some(n) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                {
                    lane_names.insert(tid, n.to_string());
                }
            }
            continue;
        }
        let Some(ts) = e.get("ts").and_then(|v| v.as_f64()) else {
            continue;
        };
        origin = origin.min(ts);
        end = end.max(ts);
        match ph {
            "B" => {
                let name = e
                    .get("name")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string();
                stacks.entry(tid).or_default().push((name, ts));
            }
            "E" => {
                if let Some((name, t0)) = stacks.entry(tid).or_default().pop() {
                    slices.entry(tid).or_default().push(TraceSlice {
                        name,
                        start_us: t0,
                        dur_us: (ts - t0).max(0.0),
                    });
                }
            }
            _ => {} // instants mark the axis extent but draw no slice
        }
    }
    if !origin.is_finite() {
        return None;
    }
    // One lane per tid that either announced a name or closed a slice.
    let tids: std::collections::BTreeSet<u64> = lane_names
        .keys()
        .copied()
        .chain(slices.keys().copied())
        .collect();
    let lanes = tids
        .into_iter()
        .map(|tid| {
            let mut s = slices.remove(&tid).unwrap_or_default();
            for sl in &mut s {
                sl.start_us -= origin;
            }
            s.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
            TraceLane {
                name: lane_names
                    .get(&tid)
                    .cloned()
                    .unwrap_or_else(|| format!("tid-{tid}")),
                tid,
                slices: s,
            }
        })
        .collect();
    Some(TraceTimeline {
        campaign,
        lanes,
        span_us: (end - origin).max(1e-3),
        dropped,
    })
}

/// Renders a flight-recorder timeline as an inline SVG: one horizontal
/// lane per worker with its executed slices as rectangles (tooltip =
/// name, start, duration), plus a busy-fraction utilization bar per lane
/// on the right. Palette slots are assigned to slice names in order of
/// first appearance (extras share the last slot; tooltips disambiguate).
pub fn svg_trace_timeline(t: &TraceTimeline) -> String {
    if t.lanes.is_empty() {
        return "<p class=\"empty\">no timeline data</p>".to_string();
    }
    let rows = t.lanes.len() as f64;
    let height = TL_T + rows * (TL_LANE_H + TL_GAP) - TL_GAP + TL_B;
    let plot_w = TL_W - TL_L - TL_R;
    let sx = |us: f64| TL_L + (us / t.span_us).clamp(0.0, 1.0) * plot_w;

    let slot_of = |name: &str, slots: &mut Vec<String>| -> usize {
        match slots.iter().position(|n| n == name) {
            Some(i) => i.min(SERIES_LIGHT.len() - 1),
            None => {
                slots.push(name.to_string());
                (slots.len() - 1).min(SERIES_LIGHT.len() - 1)
            }
        }
    };
    let mut slots: Vec<String> = Vec::new();

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg viewBox=\"0 0 {TL_W:.0} {height:.0}\" width=\"{TL_W:.0}\" \
         height=\"{height:.0}\" role=\"img\" aria-label=\"{} worker timeline\">",
        html_escape(&t.campaign)
    );
    let base_y = TL_T + rows * (TL_LANE_H + TL_GAP) - TL_GAP;
    // Time axis: baseline plus five ticks across the span.
    let _ = write!(
        svg,
        "<line class=\"axis\" x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"/>",
        fmt_coord(TL_L),
        fmt_coord(base_y + 3.0),
        fmt_coord(TL_L + plot_w),
        fmt_coord(base_y + 3.0)
    );
    for i in 0..=4 {
        let us = t.span_us * i as f64 / 4.0;
        let _ = write!(
            svg,
            "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            fmt_coord(sx(us)),
            fmt_coord(base_y + 16.0),
            html_escape(&fmt_ns(us * 1e3))
        );
    }

    for (li, lane) in t.lanes.iter().enumerate() {
        let y = TL_T + li as f64 * (TL_LANE_H + TL_GAP);
        let _ = write!(
            svg,
            "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            fmt_coord(TL_L - 6.0),
            fmt_coord(y + TL_LANE_H / 2.0 + 3.5),
            html_escape(&lane.name)
        );
        let _ = write!(
            svg,
            "<rect class=\"lanebg\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" rx=\"2\"/>",
            fmt_coord(TL_L),
            fmt_coord(y),
            fmt_coord(plot_w),
            fmt_coord(TL_LANE_H)
        );
        let mut busy_us = 0.0;
        for s in &lane.slices {
            busy_us += s.dur_us;
            let x = sx(s.start_us);
            let w = (sx(s.start_us + s.dur_us) - x).max(0.75);
            let si = slot_of(&s.name, &mut slots);
            let _ = write!(
                svg,
                "<rect class=\"f{si}\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" rx=\"1\">\
                 <title>{} @ {} for {}</title></rect>",
                fmt_coord(x),
                fmt_coord(y + 2.0),
                fmt_coord(w),
                fmt_coord(TL_LANE_H - 4.0),
                html_escape(&s.name),
                fmt_ns(s.start_us * 1e3),
                fmt_ns(s.dur_us * 1e3)
            );
        }
        // Utilization: the lane's busy fraction of the whole span.
        let frac = (busy_us / t.span_us).clamp(0.0, 1.0);
        let ux = TL_W - TL_R + 14.0;
        let _ = write!(
            svg,
            "<rect class=\"utilbg\" x=\"{}\" y=\"{}\" width=\"{UTIL_BAR_W:.0}\" \
             height=\"8\" rx=\"2\"/><rect class=\"utilbar\" x=\"{}\" y=\"{}\" \
             width=\"{}\" height=\"8\" rx=\"2\"><title>{}: busy {} of {} ({}%)\
             </title></rect><text class=\"tick\" x=\"{}\" y=\"{}\">{}%</text>",
            fmt_coord(ux),
            fmt_coord(y + TL_LANE_H / 2.0 - 4.0),
            fmt_coord(ux),
            fmt_coord(y + TL_LANE_H / 2.0 - 4.0),
            fmt_coord((frac * UTIL_BAR_W).max(0.5)),
            html_escape(&lane.name),
            fmt_ns(busy_us * 1e3),
            fmt_ns(t.span_us * 1e3),
            (frac * 100.0).round(),
            fmt_coord(ux + UTIL_BAR_W + 6.0),
            fmt_coord(y + TL_LANE_H / 2.0 + 3.5),
            (frac * 100.0).round()
        );
    }
    svg.push_str("</svg>");

    let mut legend = String::from("<div class=\"legend\">");
    for (si, name) in slots.iter().take(SERIES_LIGHT.len()).enumerate() {
        let _ = write!(
            legend,
            "<span class=\"key\"><span class=\"chip s{si}bg\"></span>{}</span>",
            html_escape(name)
        );
    }
    let _ = write!(
        legend,
        "<span class=\"key\"><span class=\"chip utilchip\"></span>utilization</span></div>"
    );
    format!("{legend}{svg}")
}

/// Renders a bench suite as a table with an inline bar per entry
/// (median, with a p10–p90 whisker) on a shared linear scale.
fn bench_suite_html(suite: &BenchSuite) -> String {
    let max = suite
        .entries
        .iter()
        .map(|e| e.p90_ns.max(e.median_ns))
        .fold(0.0f64, f64::max)
        .max(1.0);
    let bar_w = 180.0;
    let mut out = String::new();
    let _ = write!(
        out,
        "<h3 id=\"bench-{}\">bench: {}</h3><table><thead><tr><th>name</th>\
         <th>median</th><th>p10</th><th>p90</th><th>profile</th></tr></thead><tbody>",
        html_escape(&suite.name),
        html_escape(&suite.name)
    );
    for e in &suite.entries {
        let w = (e.median_ns / max * bar_w).max(1.0);
        let x10 = e.p10_ns / max * bar_w;
        let x90 = e.p90_ns / max * bar_w;
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td><svg width=\"{bar_w:.0}\" height=\"14\" \
             viewBox=\"0 0 {bar_w:.0} 14\"><rect class=\"bar\" x=\"0\" y=\"3\" \
             width=\"{}\" height=\"8\" rx=\"2\"/><line class=\"whisker\" x1=\"{}\" \
             y1=\"7\" x2=\"{}\" y2=\"7\"/><title>{}: median {}, p10 {}, p90 {}\
             </title></svg></td></tr>",
            html_escape(&e.name),
            fmt_ns(e.median_ns),
            fmt_ns(e.p10_ns),
            fmt_ns(e.p90_ns),
            fmt_coord(w),
            fmt_coord(x10),
            fmt_coord(x90),
            html_escape(&e.name),
            fmt_ns(e.median_ns),
            fmt_ns(e.p10_ns),
            fmt_ns(e.p90_ns),
        );
    }
    out.push_str("</tbody></table>");
    out
}

// ---------------------------------------------------------------------
// Metrics / manifest sections

fn json_scalar(v: &Json) -> String {
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::U64(n) => n.to_string(),
        Json::I64(n) => n.to_string(),
        Json::F64(f) => fmt_num(*f),
        Json::Str(s) => s.clone(),
        other => other.to_compact(),
    }
}

fn kv_table(title: &str, pairs: &[(String, String)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = write!(out, "<h4>{}</h4><table><tbody>", html_escape(title));
    for (k, v) in pairs {
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td></tr>",
            html_escape(k),
            html_escape(v)
        );
    }
    out.push_str("</tbody></table>");
    out
}

fn obj_pairs(v: Option<&Json>) -> Vec<(String, Json)> {
    match v {
        Some(Json::Obj(pairs)) => pairs.clone(),
        _ => Vec::new(),
    }
}

fn metrics_html(metrics: &Json) -> String {
    let mut out = String::new();
    let counters: Vec<(String, String)> = obj_pairs(metrics.get("counters"))
        .iter()
        .map(|(k, v)| (k.clone(), json_scalar(v)))
        .collect();
    out.push_str(&kv_table("counters", &counters));
    let gauges: Vec<(String, String)> = obj_pairs(metrics.get("gauges"))
        .iter()
        .map(|(k, v)| (k.clone(), json_scalar(v)))
        .collect();
    out.push_str(&kv_table("gauges", &gauges));

    let summaries = obj_pairs(metrics.get("summaries"));
    if !summaries.is_empty() {
        out.push_str(
            "<h4>summaries</h4><table><thead><tr><th>name</th><th>count</th>\
             <th>mean</th><th>min</th><th>max</th><th>p50</th><th>p90</th>\
             <th>p99</th></tr></thead><tbody>",
        );
        for (name, s) in &summaries {
            let cell = |key: &str| match s.get(key) {
                Some(v) => json_scalar(v),
                None => "–".to_string(),
            };
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                html_escape(name),
                cell("count"),
                cell("mean"),
                cell("min"),
                cell("max"),
                cell("p50"),
                cell("p90"),
                cell("p99"),
            );
        }
        out.push_str("</tbody></table>");
    }

    let spans = obj_pairs(metrics.get("spans"));
    if !spans.is_empty() {
        out.push_str(
            "<h4>spans (wall clock)</h4><table><thead><tr><th>path</th>\
             <th>count</th><th>total</th><th>mean</th></tr></thead><tbody>",
        );
        for (name, s) in &spans {
            let ns = |key: &str| {
                s.get(key)
                    .and_then(|v| v.as_f64())
                    .map(fmt_ns)
                    .unwrap_or_else(|| "–".to_string())
            };
            let count = s
                .get("count")
                .and_then(|v| v.as_u64())
                .map(|c| c.to_string())
                .unwrap_or_else(|| "–".to_string());
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td></tr>",
                html_escape(name),
                count,
                ns("total_ns"),
                ns("mean_ns"),
            );
        }
        out.push_str("</tbody></table>");
    }
    out
}

/// Renders the admission-service panel from a `/region` snapshot: a
/// service summary (capacity, load, decision/cache counters with the
/// derived hit ratio) plus a per-class table of sessions, remaining
/// headroom, and region occupancy.
fn admission_html(region: &Json) -> String {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for key in [
        "capacity",
        "load",
        "sessions",
        "decisions",
        "admitted",
        "rejected",
        "departed",
    ] {
        if let Some(v) = region.get(key) {
            pairs.push((key.to_string(), json_scalar(v)));
        }
    }
    if let Some(cache) = region.get("cache") {
        let n = |key: &str| cache.get(key).and_then(|v| v.as_f64());
        for key in ["hits", "misses", "evictions"] {
            if let Some(v) = cache.get(key) {
                pairs.push((format!("cache.{key}"), json_scalar(v)));
            }
        }
        if let (Some(h), Some(m)) = (n("hits"), n("misses")) {
            if h + m > 0.0 {
                pairs.push(("cache.hit_ratio".to_string(), fmt_num(h / (h + m))));
            }
        }
    }
    let mut out = kv_table("service", &pairs);

    if let Some(Json::Arr(classes)) = region.get("classes") {
        if !classes.is_empty() {
            out.push_str(
                "<h4>admissible region</h4><table><thead><tr><th>class</th>\
                 <th>sessions</th><th>headroom</th><th>occupancy</th></tr></thead><tbody>",
            );
            for c in classes {
                let cell = |key: &str| match c.get(key) {
                    Some(v) => json_scalar(v),
                    None => "–".to_string(),
                };
                let _ = write!(
                    out,
                    "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td></tr>",
                    html_escape(&cell("name")),
                    cell("sessions"),
                    cell("headroom"),
                    cell("occupancy"),
                );
            }
            out.push_str("</tbody></table>");
        }
    }
    out
}

/// A small inline error-budget gauge: the filled fraction of a fixed-width
/// bar, green while budget remains and the alert palette slot once spent.
fn budget_bar(frac: f64) -> String {
    let w = 90.0_f64;
    let frac = if frac.is_finite() {
        frac.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * w).round();
    let fill = if frac > 0.25 {
        "var(--series-2)"
    } else {
        "var(--series-1)"
    };
    format!(
        "<svg width=\"{w:.0}\" height=\"10\" viewBox=\"0 0 {w:.0} 10\" role=\"img\">\
         <title>{} of error budget remaining</title>\
         <rect width=\"{w:.0}\" height=\"10\" fill=\"var(--grid)\" rx=\"2\"/>\
         <rect width=\"{filled:.0}\" height=\"10\" fill=\"{fill}\" rx=\"2\"/></svg>",
        fmt_num(frac)
    )
}

/// Renders the service-health panel from an `--out-service` snapshot:
/// the SLO table (objectives, burn rates, error-budget gauges), the
/// per-route request table, and the request-latency CCDF on log axes —
/// the operational mirror of the analytic tail charts above it.
fn service_health_html(service: &Json) -> String {
    let mut out = String::new();

    if let Some(Json::Arr(slos)) = service.get("slo").and_then(|s| s.get("slos")) {
        if !slos.is_empty() {
            out.push_str(
                "<h4>SLOs</h4><table><thead><tr><th>slo</th><th>route</th>\
                 <th>objective</th><th>good</th><th>bad</th><th>budget</th>\
                 <th>fast burn</th><th>slow burn</th><th>breaches</th></tr></thead><tbody>",
            );
            for s in slos {
                let cell = |key: &str| match s.get(key) {
                    Some(Json::Null) | None => "–".to_string(),
                    Some(v) => json_scalar(v),
                };
                let burn = |win: &str| match s.get(win) {
                    Some(w) => {
                        let rate = w.get("burn_rate").map(json_scalar).unwrap_or_default();
                        match w.get("breached") {
                            Some(Json::Bool(true)) => format!("{rate} ⚠"),
                            _ => rate,
                        }
                    }
                    None => "–".to_string(),
                };
                let budget = s
                    .get("budget_remaining")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                let _ = write!(
                    out,
                    "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td class=\"num\">{}</td><td>{}</td>\
                     <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                    html_escape(&cell("name")),
                    html_escape(&cell("route")),
                    cell("objective"),
                    cell("good"),
                    cell("bad"),
                    budget_bar(budget),
                    burn("fast"),
                    burn("slow"),
                    cell("breaches"),
                );
            }
            out.push_str("</tbody></table>");
        }
    }

    if let Some(Json::Arr(routes)) = service.get("routes") {
        if !routes.is_empty() {
            out.push_str(
                "<h4>requests</h4><table><thead><tr><th>route</th><th>status</th>\
                 <th>count</th></tr></thead><tbody>",
            );
            for r in routes {
                let cell = |key: &str| match r.get(key) {
                    Some(v) => json_scalar(v),
                    None => "–".to_string(),
                };
                let _ = write!(
                    out,
                    "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                    html_escape(&cell("route")),
                    cell("status"),
                    cell("count"),
                );
            }
            out.push_str("</tbody></table>");
        }
    }

    if let Some(Json::Arr(latency)) = service.get("latency") {
        let mut rows = String::new();
        let mut series: Vec<CurveSeries> = Vec::new();
        for l in latency {
            let route = l
                .get("route")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            let total = l.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let q = |key: &str| match l.get(key) {
                Some(v) => v.as_f64().map(fmt_ns).unwrap_or_else(|| "–".to_string()),
                None => "–".to_string(),
            };
            let _ = write!(
                rows,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                html_escape(&route),
                fmt_num(total),
                q("p50_ns"),
                q("p90_ns"),
                q("p99_ns"),
                q("max_ns"),
            );
            if total <= 0.0 {
                continue;
            }
            let mut points = Vec::new();
            let mut cum = 0.0;
            if let Some(Json::Arr(buckets)) = l.get("buckets") {
                for b in buckets {
                    if let Json::Arr(pair) = b {
                        let le = pair.first().and_then(|v| v.as_f64()).unwrap_or(0.0);
                        let c = pair.get(1).and_then(|v| v.as_f64()).unwrap_or(0.0);
                        if le <= 0.0 {
                            continue;
                        }
                        cum += c;
                        points.push((le.log10(), (1.0 - cum / total).max(0.0)));
                    }
                }
            }
            if !points.is_empty() {
                series.push(CurveSeries {
                    label: route,
                    points,
                });
            }
        }
        if !rows.is_empty() {
            let _ = write!(
                out,
                "<h4>latency</h4><table><thead><tr><th>route</th><th>count</th>\
                 <th>p50</th><th>p90</th><th>p99</th><th>max</th></tr></thead><tbody>{rows}</tbody></table>"
            );
        }
        if !series.is_empty() {
            let chart = CurveChart {
                title: "request latency CCDF (HDR histogram)".to_string(),
                x_label: "log10 latency (ns)".to_string(),
                series,
                log_y: true,
            };
            let _ = write!(
                out,
                "<div class=\"charts\"><figure><figcaption>{}</figcaption>{}</figure></div>",
                html_escape(&chart.title),
                svg_curve_chart(&chart)
            );
        }
    }

    out
}

/// Renders the distributed overload panel: certificate charts, the
/// throughput-vs-guarantee table (attack row flagged), the shed-fraction
/// line, and the coordinator's orchestration counters.
fn overload_html(p: &OverloadPanel) -> String {
    let mut out = String::new();
    if !p.charts.is_empty() {
        out.push_str("<div class=\"charts\">");
        for c in &p.charts {
            let _ = write!(
                out,
                "<figure><figcaption>{}</figcaption>{}</figure>",
                html_escape(&c.title),
                svg_curve_chart(c)
            );
        }
        out.push_str("</div>");
    }
    if !p.sessions.is_empty() {
        out.push_str(
            "<h4>throughput vs guarantee</h4><table><thead><tr><th>session</th>\
             <th>role</th><th>throughput</th><th>guaranteed rate</th></tr></thead><tbody>",
        );
        for s in &p.sessions {
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td></tr>",
                html_escape(&s.label),
                if s.attack { "attack ⚠" } else { "protected" },
                fmt_num(s.throughput),
                fmt_num(s.guaranteed),
            );
        }
        out.push_str("</tbody></table>");
    }
    if let Some((measured, analytic)) = p.shed {
        let _ = write!(
            out,
            "<p class=\"note\">attack shed fraction: measured {} (analytic {})</p>",
            fmt_num(measured),
            fmt_num(analytic)
        );
    }
    out.push_str(&kv_table("orchestration", &p.orchestration));
    out
}

fn manifest_html(manifest: &Json) -> String {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for key in ["campaign", "seed"] {
        if let Some(v) = manifest.get(key) {
            pairs.push((key.to_string(), json_scalar(v)));
        }
    }
    for (k, v) in obj_pairs(manifest.get("params")) {
        pairs.push((format!("param.{k}"), json_scalar(&v)));
    }
    for (k, v) in obj_pairs(manifest.get("outputs")) {
        pairs.push((format!("output.{k}"), format!("{} rows", json_scalar(&v))));
    }
    kv_table("manifest", &pairs)
}

/// Renders the full dashboard document.
pub fn render(d: &Dashboard) -> String {
    let mut body = String::new();

    if !d.charts.is_empty() {
        body.push_str("<h2>Bound vs. simulation</h2><div class=\"charts\">");
        for c in &d.charts {
            let _ = write!(
                body,
                "<figure><figcaption>{}</figcaption>{}</figure>",
                html_escape(&c.title),
                svg_curve_chart(c)
            );
        }
        body.push_str("</div>");
    }

    if !d.timelines.is_empty() {
        body.push_str("<h2>Flight-recorder timelines</h2><div class=\"charts\">");
        for t in &d.timelines {
            let caption = if t.dropped > 0 {
                format!(
                    "{}: worker timeline ({} events dropped by the bounded ring)",
                    t.campaign, t.dropped
                )
            } else {
                format!("{}: worker timeline", t.campaign)
            };
            let _ = write!(
                body,
                "<figure><figcaption>{}</figcaption>{}</figure>",
                html_escape(&caption),
                svg_trace_timeline(t)
            );
        }
        body.push_str("</div>");
    }

    if !d.campaigns.is_empty() {
        body.push_str("<h2>Campaigns</h2>");
        for c in &d.campaigns {
            let _ = write!(
                body,
                "<details open><summary><h3 id=\"campaign-{0}\">{0}</h3></summary>",
                html_escape(&c.name)
            );
            if let Some(m) = &c.manifest {
                body.push_str(&manifest_html(m));
            }
            if let Some(m) = &c.metrics {
                body.push_str(&metrics_html(m));
            }
            if c.manifest.is_none() && c.metrics.is_none() {
                body.push_str("<p class=\"empty\">no artifacts</p>");
            }
            body.push_str("</details>");
        }
    }

    if let Some(p) = &d.overload {
        let _ = write!(
            body,
            "<h2>Distributed overload campaign</h2><details open><summary>\
             <h3 id=\"overload\">{} — shedding under attack, certificates held\
             </h3></summary>",
            html_escape(&p.scenario)
        );
        body.push_str(&overload_html(p));
        body.push_str("</details>");
    }

    if let Some(region) = &d.admission {
        body.push_str(
            "<h2>Admission control</h2><details open><summary>\
                       <h3 id=\"admission\">admission service</h3></summary>",
        );
        body.push_str(&admission_html(region));
        body.push_str("</details>");
    }

    if !d.services.is_empty() {
        body.push_str("<h2>Service health</h2>");
        for service in &d.services {
            let name = service
                .get("service")
                .and_then(|v| v.as_str())
                .unwrap_or("service");
            let _ = write!(
                body,
                "<details open><summary><h3 id=\"service-{0}\">{0}: request \
                 telemetry &amp; SLOs</h3></summary>",
                html_escape(name)
            );
            body.push_str(&service_health_html(service));
            body.push_str("</details>");
        }
    }

    if !d.benches.is_empty() {
        body.push_str("<h2>Benches</h2>");
        for b in &d.benches {
            body.push_str(&bench_suite_html(b));
        }
    }

    let series_css = |palette: [&str; 4]| -> String {
        let mut out = String::new();
        for (i, hex) in palette.iter().enumerate() {
            let _ = writeln!(out, "  --series-{i}: {hex};");
        }
        out
    };

    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>GPS statistical-analysis results</title>\n<style>\n\
         :root {{\n  color-scheme: light dark;\n  --surface: #fcfcfb;\n  --page: #f9f9f7;\n\
         --ink: #0b0b0b;\n  --ink-2: #52514e;\n  --muted: #898781;\n  --grid: #e1e0d9;\n\
         --axis: #c3c2b7;\n{light}}}\n\
         @media (prefers-color-scheme: dark) {{\n:root {{\n  --surface: #1a1a19;\n\
         --page: #0d0d0d;\n  --ink: #ffffff;\n  --ink-2: #c3c2b7;\n  --muted: #898781;\n\
         --grid: #2c2c2a;\n  --axis: #383835;\n{dark}}}\n}}\n\
         body {{ font: 14px/1.45 system-ui, -apple-system, \"Segoe UI\", sans-serif;\n\
           color: var(--ink); background: var(--page); margin: 0 auto; max-width: 1180px;\n\
           padding: 24px; }}\n\
         h1 {{ font-size: 20px; }} h2 {{ font-size: 17px; margin-top: 28px;\n\
           border-bottom: 1px solid var(--grid); padding-bottom: 4px; }}\n\
         h3 {{ font-size: 15px; display: inline-block; margin: 12px 0 4px; }}\n\
         h4 {{ font-size: 13px; color: var(--ink-2); margin: 10px 0 4px; }}\n\
         p.note, p.empty {{ color: var(--ink-2); }}\n\
         figure {{ background: var(--surface); border: 1px solid var(--grid);\n\
           border-radius: 8px; padding: 10px 12px; margin: 0; }}\n\
         figcaption {{ color: var(--ink-2); font-size: 13px; margin-bottom: 4px; }}\n\
         .charts {{ display: flex; flex-wrap: wrap; gap: 14px; }}\n\
         table {{ border-collapse: collapse; margin: 4px 0 10px; background: var(--surface);\n\
           font-variant-numeric: tabular-nums; }}\n\
         th, td {{ border: 1px solid var(--grid); padding: 2px 8px; text-align: left;\n\
           font-size: 12.5px; }}\n\
         th {{ color: var(--ink-2); font-weight: 600; }}\n  td.num {{ text-align: right; }}\n\
         details {{ background: var(--surface); border: 1px solid var(--grid);\n\
           border-radius: 8px; padding: 4px 12px 8px; margin: 10px 0; }}\n\
         summary {{ cursor: pointer; }}\n\
         .legend {{ display: flex; gap: 14px; font-size: 12px; color: var(--ink-2);\n\
           margin: 2px 0 4px; flex-wrap: wrap; }}\n\
         .key {{ display: inline-flex; align-items: center; gap: 5px; }}\n\
         .chip {{ width: 10px; height: 10px; border-radius: 3px; display: inline-block; }}\n\
         svg text.tick {{ fill: var(--muted); font-size: 10px;\n\
           font-family: system-ui, sans-serif; }}\n\
         svg line.grid {{ stroke: var(--grid); stroke-width: 1; }}\n\
         svg line.axis {{ stroke: var(--axis); stroke-width: 1; }}\n\
         svg rect.bar {{ fill: var(--series-0); }}\n\
         svg line.whisker {{ stroke: var(--ink-2); stroke-width: 1.5; }}\n\
         svg rect.lanebg {{ fill: var(--grid); opacity: .45; }}\n\
         svg rect.utilbg {{ fill: var(--grid); }}\n\
         svg rect.utilbar {{ fill: var(--series-2); }}\n\
         .utilchip {{ background: var(--series-2); }}\n\
         {series_rules}\n\
         footer {{ color: var(--muted); font-size: 12px; margin-top: 28px; }}\n\
         </style>\n</head>\n<body>\n\
         <h1>Statistical Analysis of GPS — results dashboard</h1>\n\
         <p class=\"note\">Generated by <code>report</code> from committed\n\
         <code>results/</code> artifacts (CSV curves, metrics snapshots, manifests,\n\
         bench JSON). Deterministic: same inputs, same bytes.</p>\n\
         {body}\n\
         <footer>gps-qos results dashboard · static HTML, no scripts · sources:\n\
         results/*.csv, results/*_metrics.json, results/*_manifest.json,\n\
         results/bench_*.json</footer>\n</body>\n</html>\n",
        light = series_css(SERIES_LIGHT),
        dark = series_css(SERIES_DARK),
        series_rules = {
            let mut rules = String::new();
            for i in 0..SERIES_LIGHT.len() {
                let _ = write!(
                    rules,
                    "svg .s{i} {{ stroke: var(--series-{i}); }}\n\
                     svg circle.s{i} {{ fill: var(--series-{i}); stroke: var(--surface);\n\
                       stroke-width: 1; }}\n\
                     svg rect.f{i} {{ fill: var(--series-{i}); }}\n\
                     .s{i}bg {{ background: var(--series-{i}); }}\n"
                );
            }
            rules
        },
        body = body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn chart() -> CurveChart {
        CurveChart {
            title: "session 1 backlog".to_string(),
            x_label: "backlog b".to_string(),
            series: vec![
                CurveSeries {
                    label: "empirical".to_string(),
                    points: vec![(0.0, 1.0), (1.0, 0.1), (2.0, 0.01)],
                },
                CurveSeries {
                    label: "EBB bound".to_string(),
                    points: vec![(0.0, 1.0), (1.0, 0.5), (2.0, 0.2)],
                },
            ],
            log_y: true,
        }
    }

    #[test]
    fn svg_chart_has_lines_legend_and_tooltips() {
        let svg = svg_curve_chart(&chart());
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("class=\"legend\""));
        assert!(svg.contains("empirical"));
        assert!(svg.contains("<title>"));
        assert!(svg.contains("1e0")); // log decade tick
    }

    #[test]
    fn render_is_deterministic_and_escapes() {
        let d = Dashboard {
            charts: vec![chart()],
            campaigns: vec![CampaignSection {
                name: "validate_single".to_string(),
                manifest: Some(
                    json::parse(
                        "{\"campaign\":\"validate_single\",\"seed\":7,\
                         \"params\":{\"set\":\"Set<1>\"},\"outputs\":{\"a.csv\":10}}",
                    )
                    .unwrap(),
                ),
                metrics: Some(
                    json::parse(
                        "{\"counters\":{\"sim.measured_slots\":100},\"gauges\":{},\
                         \"histograms\":{},\"summaries\":{\"s\":{\"count\":2,\"mean\":1.5,\
                         \"min\":1,\"max\":2,\"p50\":1.5,\"p90\":2,\"p99\":2}}}",
                    )
                    .unwrap(),
                ),
            }],
            benches: vec![BenchSuite {
                name: "simulators".to_string(),
                entries: vec![BenchEntry {
                    name: "slotted/4src".to_string(),
                    median_ns: 1.5e6,
                    p10_ns: 1.4e6,
                    p90_ns: 1.7e6,
                }],
            }],
            timelines: Vec::new(),
            admission: Some(
                json::parse(
                    "{\"capacity\":1,\"load\":0.56,\"sessions\":10,\"decisions\":40,\
                     \"admitted\":25,\"rejected\":5,\"departed\":10,\
                     \"cache\":{\"hits\":30,\"misses\":10,\"evictions\":0},\
                     \"classes\":[{\"class\":0,\"name\":\"voice<1>\",\"sessions\":4,\
                     \"headroom\":3,\"occupancy\":0.571}]}",
                )
                .unwrap(),
            ),
            overload: Some(OverloadPanel {
                scenario: "overload".to_string(),
                charts: vec![chart()],
                sessions: vec![
                    OverloadSession {
                        label: "session 1".to_string(),
                        throughput: 0.203,
                        guaranteed: 0.21,
                        attack: false,
                    },
                    OverloadSession {
                        label: "session 5".to_string(),
                        throughput: 0.047,
                        guaranteed: 0.06,
                        attack: true,
                    },
                ],
                shed: Some((0.905, 0.9)),
                orchestration: vec![("leases".to_string(), "7".to_string())],
            }),
            services: vec![json::parse(
                "{\"service\":\"admitd\",\"slo\":{\"service\":\"admitd\",\"now_s\":1,\
                     \"slos\":[{\"name\":\"avail<1>\",\"route\":null,\"objective\":0.999,\
                     \"latency_threshold_ns\":null,\"good\":90,\"bad\":10,\
                     \"budget_remaining\":0.2,\"breaches\":1,\
                     \"fast\":{\"seconds\":300,\"good\":90,\"bad\":10,\"burn_rate\":100,\
                     \"threshold\":14.4,\"breached\":true},\
                     \"slow\":{\"seconds\":3600,\"good\":90,\"bad\":10,\"burn_rate\":100,\
                     \"threshold\":6,\"breached\":false}}]},\
                     \"routes\":[{\"route\":\"/admit\",\"status\":200,\"count\":90}],\
                     \"latency\":[{\"route\":\"/admit\",\"count\":90,\"p50_ns\":63000,\
                     \"p90_ns\":90000,\"p99_ns\":120000,\"max_ns\":130000,\
                     \"buckets\":[[63000,45],[90000,40],[130000,5]]}]}",
            )
            .unwrap()],
        };
        let a = render(&d);
        let b = render(&d);
        assert_eq!(a, b);
        assert!(a.contains("Set&lt;1&gt;")); // escaped param value
        assert!(a.contains("sim.measured_slots"));
        assert!(a.contains("1.50 ms"));
        assert!(a.contains("bench: simulators"));
        assert!(a.contains("Admission control"));
        assert!(a.contains("cache.hit_ratio"));
        assert!(a.contains("voice&lt;1&gt;")); // class names are escaped
        assert!(a.contains("admissible region"));
        assert!(a.contains("Service health"));
        assert!(a.contains("admitd: request telemetry"));
        assert!(a.contains("Distributed overload campaign"));
        assert!(a.contains("attack ⚠"));
        assert!(a.contains("shed fraction: measured 0.905 (analytic 0.9)"));
        assert!(a.contains("orchestration"));
        assert!(a.contains("avail&lt;1&gt;")); // SLO names are escaped
        assert!(a.contains("100 ⚠")); // fast-window breach marker
        assert!(a.contains("error budget remaining"));
        assert!(a.contains("request latency CCDF"));
        assert!(a.contains("63.00 µs")); // p50 in readable units
        assert!(!a.contains("<script"));
    }

    fn sample_trace_doc() -> Json {
        json::parse(
            "{\"traceEvents\":[\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
              \"args\":{\"name\":\"main\"}},\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
              \"args\":{\"name\":\"worker-0\"}},\
             {\"name\":\"sim/campaign\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":0.0,\
              \"pid\":1,\"tid\":0,\"args\":{\"items\":0}},\
             {\"name\":\"chunk\",\"cat\":\"worker_chunk\",\"ph\":\"B\",\"ts\":10.5,\
              \"pid\":1,\"tid\":1,\"args\":{\"items\":4}},\
             {\"name\":\"chunk\",\"cat\":\"worker_chunk\",\"ph\":\"E\",\"ts\":60.5,\
              \"pid\":1,\"tid\":1},\
             {\"name\":\"checkpoint_write\",\"cat\":\"checkpoint_write\",\"ph\":\"i\",\
              \"ts\":61.0,\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"items\":0}},\
             {\"name\":\"sim/campaign\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":100.0,\
              \"pid\":1,\"tid\":0}],\
             \"displayTimeUnit\":\"ms\",\
             \"otherData\":{\"campaign\":\"demo\",\"dropped\":3}}",
        )
        .unwrap()
    }

    #[test]
    fn timeline_decodes_lanes_slices_and_drops() {
        let t = timeline_from_chrome_trace(&sample_trace_doc()).expect("timeline");
        assert_eq!(t.campaign, "demo");
        assert_eq!(t.dropped, 3);
        assert_eq!(t.lanes.len(), 2);
        assert_eq!(t.lanes[0].name, "main");
        assert_eq!(t.lanes[1].name, "worker-0");
        assert_eq!(t.lanes[0].slices.len(), 1);
        assert!((t.lanes[0].slices[0].dur_us - 100.0).abs() < 1e-9);
        let chunk = &t.lanes[1].slices[0];
        assert_eq!(chunk.name, "chunk");
        assert!((chunk.start_us - 10.5).abs() < 1e-9);
        assert!((chunk.dur_us - 50.0).abs() < 1e-9);
        assert!((t.span_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_rejects_counts_digest() {
        let counts = json::parse(
            "{\"trace\":\"counts\",\"campaign\":\"demo\",\"events\":[\
             {\"kind\":\"worker_chunk\",\"name\":\"chunk\",\"items\":640}]}",
        )
        .unwrap();
        assert!(timeline_from_chrome_trace(&counts).is_none());
    }

    #[test]
    fn timeline_svg_has_lanes_utilization_and_tooltips() {
        let t = timeline_from_chrome_trace(&sample_trace_doc()).unwrap();
        let svg = svg_trace_timeline(&t);
        assert_eq!(svg, svg_trace_timeline(&t), "renderer must be pure");
        assert!(svg.contains(">main</text>"));
        assert!(svg.contains(">worker-0</text>"));
        assert!(svg.contains("class=\"lanebg\""));
        assert!(svg.contains("class=\"utilbar\""));
        assert!(svg.contains("<title>chunk @"));
        // worker-0 is busy 50 µs of the 100 µs span.
        assert!(svg.contains(">50%</text>"), "missing utilization: {svg}");
        assert!(svg.contains("utilization"));
    }

    #[test]
    fn dashboard_renders_timeline_section() {
        let t = timeline_from_chrome_trace(&sample_trace_doc()).unwrap();
        let html = render(&Dashboard {
            timelines: vec![t],
            ..Dashboard::default()
        });
        assert!(html.contains("Flight-recorder timelines"));
        assert!(html.contains("demo: worker timeline (3 events dropped"));
        assert!(html.contains("rect.f0"));
    }

    #[test]
    fn empty_dashboard_still_renders() {
        let html = render(&Dashboard::default());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("</html>"));
    }

    #[test]
    fn number_formats() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(2.5), "2.5");
        assert_eq!(fmt_num(1234.0), "1234.0");
        assert_eq!(fmt_num(0.0001), "1.00e-4");
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2.5e3), "2.50 µs");
        assert_eq!(fmt_ns(3.2e9), "3.20 s");
    }
}
