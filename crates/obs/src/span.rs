//! Scoped wall-clock span timing with hierarchical labels.
//!
//! A [`Span`] is an RAII guard: created at the top of a hot path, it
//! records its wall-clock duration into a [`Registry`](crate::metrics::Registry)
//! when dropped. Nested spans compose their labels into a `/`-separated
//! path through a thread-local stack, so `run_single_node` containing a
//! `measure` phase records under `sim.single_node/measure`.
//!
//! Timing is **off by default**: a disabled span is a unit struct whose
//! construction is one branch and whose drop does nothing — cheap enough
//! to leave in simulator event loops permanently (the ≤5 % bench-neutrality
//! budget is the design constraint here).

use crate::metrics::Registry;
use crate::trace;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An in-flight timed span. Create via [`Span::enter`] (or the
/// [`crate::span`] shorthand against the global hub); the measurement is
/// recorded on drop.
#[derive(Debug)]
pub struct Span {
    /// `None` when timing is disabled — drop is then a no-op.
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    registry: Registry,
    start: Instant,
    /// Mirrors the scope into the flight recorder when tracing is on;
    /// held only for its Drop (the end event).
    _trace: trace::TraceScope,
}

impl Span {
    /// Starts a span labeled `label` recording into `registry` when
    /// `enabled`; returns an inert guard otherwise.
    pub fn enter(registry: &Registry, label: &str, enabled: bool) -> Span {
        if !enabled {
            return Span { active: None };
        }
        SPAN_PATH.with(|p| p.borrow_mut().push(label.to_string()));
        Span {
            active: Some(ActiveSpan {
                registry: registry.clone(),
                start: Instant::now(),
                _trace: trace::scope(trace::TraceKind::SpanScope, label, 0),
            }),
        }
    }

    /// Whether this span is actually timing.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let ns = active.start.elapsed().as_nanos() as u64;
        let path = SPAN_PATH.with(|p| {
            let mut stack = p.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        active.registry.record_span(&path, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let r = Registry::new();
        {
            let s = Span::enter(&r, "idle", false);
            assert!(!s.is_active());
        }
        assert!(r.snapshot().spans.is_empty());
    }

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let r = Registry::new();
        {
            let _outer = Span::enter(&r, "run", true);
            {
                let _inner = Span::enter(&r, "measure", true);
                std::hint::black_box(0u64);
            }
            {
                let _inner = Span::enter(&r, "measure", true);
            }
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["run", "run/measure"]);
        let inner = r.span_stats("run/measure").unwrap();
        assert_eq!(inner.count, 2);
        let outer = r.span_stats("run").unwrap();
        assert_eq!(outer.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn sibling_spans_share_a_path() {
        let r = Registry::new();
        for _ in 0..3 {
            let _s = Span::enter(&r, "solo", true);
        }
        assert_eq!(r.span_stats("solo").unwrap().count, 3);
    }
}
