//! Integration tests for the observability determinism contract:
//! journal NDJSON round-trips, metrics snapshots are byte-identical for
//! identical seeded workloads, and the Noop sink writes nothing.

use gps_obs::journal::{self, Sink};
use gps_obs::metrics::Registry;
use gps_obs::{FieldValue, Journal, Level};
use gps_stats::rng::{RngExt, Xoshiro256pp};

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gps_obs_it_{tag}_{}", std::process::id()))
}

#[test]
fn ndjson_round_trip_through_file_sink() {
    let dir = tmp_path("roundtrip");
    let path = dir.join("events.ndjson");
    let j = Journal::file(&path, Level::Debug).expect("open journal");
    j.info(
        "sim.runner",
        "single_node_start",
        &[
            ("seed", FieldValue::U64(20260704)),
            ("capacity", FieldValue::F64(1.0)),
            ("set", FieldValue::Str("Set1")),
        ],
    );
    j.debug(
        "sim.faults",
        "fault_config",
        &[("drop", FieldValue::F64(0.1))],
    );
    j.error("campaign", "boom", &[("fatal", FieldValue::Bool(false))]);
    drop(j);

    let text = std::fs::read_to_string(&path).expect("read journal");
    let events = journal::parse_ndjson(&text).expect("parse journal");
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].level, Level::Info);
    assert_eq!(events[0].component, "sim.runner");
    assert_eq!(events[0].event, "single_node_start");
    let field = |e: &journal::ParsedEvent, key: &str| {
        e.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    assert_eq!(field(&events[0], "seed").as_u64(), Some(20260704));
    assert_eq!(field(&events[0], "set").as_str(), Some("Set1"));
    assert_eq!(events[1].level, Level::Debug);
    assert_eq!(events[2].level, Level::Error);
    // Sequence numbers are consecutive from zero.
    for (k, e) in events.iter().enumerate() {
        assert_eq!(e.seq, k as u64);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn canonical_lines_identical_across_runs() {
    // Two separate journals emitting the same events differ only in the
    // t_us timing field: stripping it must make them byte-identical.
    let write_once = |tag: &str| {
        let dir = tmp_path(tag);
        let path = dir.join("j.ndjson");
        let j = Journal::file(&path, Level::Info).expect("open");
        for k in 0..10u64 {
            j.info("c", "tick", &[("k", FieldValue::U64(k))]);
        }
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_dir_all(&dir).ok();
        text
    };
    let a = write_once("runa");
    let b = write_once("runb");
    let strip = |t: &str| -> Vec<String> { t.lines().map(journal::strip_timing_line).collect() };
    assert_eq!(strip(&a), strip(&b));
}

#[test]
fn metrics_snapshot_deterministic_under_fixed_seed() {
    let run = |seed: u64| -> String {
        let r = Registry::new();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let hits = r.counter("workload.hits");
        let level = r.gauge("workload.level");
        let h = r.histogram("workload.values", 0.0, 1.0, 20);
        let s = r.summary("workload.summary");
        for _ in 0..5_000 {
            let x = rng.next_f64();
            if x > 0.25 {
                hits.inc();
            }
            level.set(x);
            h.observe(x);
            s.observe(x);
        }
        r.snapshot().to_json_without_spans()
    };
    assert_eq!(run(0xDE7E), run(0xDE7E));
    assert_ne!(run(0xDE7E), run(0xDE7F));
}

#[test]
fn noop_sink_writes_nothing() {
    let j = Journal::noop();
    assert!(!j.enabled(Level::Error));
    for _ in 0..1_000 {
        j.info("c", "e", &[("x", FieldValue::U64(1))]);
        j.error("c", "e", &[]);
    }
    assert_eq!(j.events_written(), 0);
    // Stderr journal below Info level also stays silent.
    let quiet = Journal::new(Sink::Stderr, Level::Error);
    quiet.info("c", "suppressed", &[]);
    assert_eq!(quiet.events_written(), 0);
}

#[test]
fn fault_counters_flow_into_snapshot_json() {
    // End-to-end: seeded RNG drives counters through the registry and the
    // rendered snapshot carries exact integer counts.
    let r = Registry::new();
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let drops = r.counter("sim.faults.drops{session=0}");
    let mut expected = 0u64;
    for _ in 0..10_000 {
        if rng.bernoulli(0.125) {
            drops.inc();
            expected += 1;
        }
    }
    let json = r.snapshot().to_json();
    let v = gps_obs::json::parse(&json).expect("snapshot json");
    let counters = v.get("counters").expect("counters key");
    assert_eq!(
        counters
            .get("sim.faults.drops{session=0}")
            .unwrap()
            .as_u64(),
        Some(expected)
    );
}
