//! The observability hot path must stay off the allocator and off every
//! lock when nothing is listening: a disabled journal `emit` and cached
//! `Counter`/`Gauge` handles are what campaign workers hammer millions
//! of times per second, so a single stray allocation (or a snapshot that
//! depends on worker interleaving) is a scaling bug.
//!
//! The proof is a counting global allocator with *per-thread* counters:
//! each worker measures its own allocation delta across the hot loop, so
//! the assertion is immune to what other test threads are doing.

use gps_obs::metrics::Registry;
use gps_obs::{Journal, Level};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Barrier;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations made by the current thread since it started.
fn thread_allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may already be torn down during thread exit.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const WORKERS: usize = 4;
const ITERS: u64 = 20_000;

#[test]
fn disabled_journal_and_cached_handles_never_allocate() {
    let journal = Journal::noop();
    let registry = Registry::new();
    let barrier = Barrier::new(WORKERS);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let (journal, registry, barrier) = (&journal, &registry, &barrier);
                s.spawn(move || {
                    // Handle acquisition may allocate (name interning);
                    // the steady-state loop below must not.
                    let counter = registry.counter("hot.events");
                    let gauge = registry.gauge("hot.level");
                    barrier.wait();
                    let before = thread_allocs();
                    for i in 0..ITERS {
                        journal.emit(
                            Level::Info,
                            "sim.hot",
                            "slot",
                            &[("slot", i.into()), ("busy", true.into())],
                        );
                        counter.inc();
                        gauge.set(i as f64);
                        // The disabled flight recorder is one relaxed
                        // load and an early return — no ring buffer, no
                        // interning, no allocation.
                        gps_obs::trace::begin(gps_obs::TraceKind::WorkerChunk, "chunk", i);
                        gps_obs::trace::end(gps_obs::TraceKind::WorkerChunk, "chunk");
                        gps_obs::trace::instant(gps_obs::TraceKind::CheckpointWrite, "ckpt", i);
                        let _scope =
                            gps_obs::trace::scope(gps_obs::TraceKind::MonitorFold, "fold", i);
                    }
                    thread_allocs() - before
                })
            })
            .collect();
        for h in handles {
            let allocs = h.join().expect("worker panicked");
            assert_eq!(
                allocs, 0,
                "disabled-sink hot path allocated {allocs} times in {ITERS} iterations"
            );
        }
    });

    // The updates all landed despite never touching the allocator.
    assert_eq!(journal.events_written(), 0, "noop sink must swallow events");
    assert_eq!(registry.counter("hot.events").get(), WORKERS as u64 * ITERS);
}

#[test]
fn concurrent_updates_snapshot_identically_to_serial() {
    let concurrent = Registry::new();
    std::thread::scope(|s| {
        for t in 0..WORKERS {
            let concurrent = &concurrent;
            s.spawn(move || {
                let shared = concurrent.counter("camp.replications");
                let own = concurrent.counter(&format!("camp.worker.{t}"));
                let gauge = concurrent.gauge("camp.load");
                for i in 0..ITERS {
                    shared.inc();
                    own.add(3);
                    gauge.set(0.75 + (i % 2) as f64); // last write wins: 1.75
                }
            });
        }
    });

    let serial = Registry::new();
    serial
        .counter("camp.replications")
        .add(WORKERS as u64 * ITERS);
    for t in 0..WORKERS {
        serial.counter(&format!("camp.worker.{t}")).add(3 * ITERS);
    }
    serial.gauge("camp.load").set(1.75);

    assert_eq!(
        concurrent.snapshot().to_json_without_spans(),
        serial.snapshot().to_json_without_spans(),
        "worker interleaving leaked into the metrics snapshot"
    );
}
