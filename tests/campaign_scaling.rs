//! Scaling/determinism harness for the chunked campaign engine: the
//! chunk size and worker count are pure scheduling knobs — every
//! `(threads, chunk)` combination must produce byte-identical campaign
//! output (CSV rows as the experiment binaries format them, plus the
//! ordered metrics fold), supervised campaigns must restore/retry/
//! quarantine identically under chunking, and the memory-bounded merged
//! campaign must be thread-invariant at a fixed chunk.
//!
//! The `#[ignore]`d smoke-scale test at the bottom runs a 10^5-
//! replication merged campaign and checks the multi-worker path is not
//! slower than serial (the historical failure mode this harness exists
//! to prevent: threads making campaigns *slower*).

use gps_obs::metrics::Registry;
use gps_par::TaskOutcome;
use gps_qos::prelude::*;
use gps_sim::runner::{
    record_single_node_metrics, run_network_campaign_chunked_threads,
    run_single_node_campaign_chunked_threads, run_single_node_campaign_merged_threads,
    run_single_node_campaign_threads, NetworkRunReport, SingleNodeRunReport,
};
use gps_sim::supervise::run_supervised_single_node_campaign_chunked_threads;
use gps_sources::SlotSource;
use std::path::{Path, PathBuf};

const REPLICATIONS: u64 = 6;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn single_node_config() -> SingleNodeRunConfig {
    SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 300,
        measure: 5_000,
        seed: 0xCA11,
        backlog_grid: (0..50).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..50).map(|i| i as f64).collect(),
    }
}

fn network_config() -> NetworkRunConfig {
    NetworkRunConfig {
        topology: NetworkTopology::paper_figure2([0.2, 0.25, 0.2, 0.25]),
        warmup: 300,
        measure: 3_000,
        seed: 0xBEEF,
        backlog_grid: (0..40).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..40).map(|i| i as f64).collect(),
    }
}

fn make_sources() -> Vec<Box<dyn SlotSource>> {
    OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect()
}

/// The chunk sweep every identity test runs: single-replication chunks
/// (maximal scheduling freedom), the `GPS_PAR_CHUNK`-aware default, and
/// one chunk spanning the whole campaign (fully serial per worker).
fn chunk_sweep() -> [Option<usize>; 3] {
    [Some(1), None, Some(REPLICATIONS as usize)]
}

/// CSV rows exactly as the experiment binaries format them (`{:.10e}`
/// cells), so equality here means byte-identical output files.
fn single_node_csv_rows(report: &SingleNodeRunReport) -> Vec<String> {
    let mut rows = Vec::new();
    for (i, s) in report.sessions.iter().enumerate() {
        for (x, p) in s.backlog.series() {
            rows.push(format!("{i},0,{x:.10e},{p:.10e}"));
        }
        for (x, p) in s.delay.series() {
            rows.push(format!("{i},1,{x:.10e},{p:.10e}"));
        }
        rows.push(format!("{i},tput,{:.10e}", s.throughput));
    }
    rows
}

fn network_csv_rows(report: &NetworkRunReport) -> Vec<String> {
    let mut rows = Vec::new();
    for i in 0..report.backlog.len() {
        for (x, p) in report.backlog[i].series() {
            rows.push(format!("{i},0,{x:.10e},{p:.10e}"));
        }
        for (x, p) in report.delay[i].series() {
            rows.push(format!("{i},1,{x:.10e},{p:.10e}"));
        }
    }
    rows
}

fn single_node_metrics_json(reports: &[SingleNodeRunReport]) -> String {
    let reg = Registry::new();
    for r in reports {
        record_single_node_metrics(&reg, r);
    }
    reg.snapshot().to_json_without_spans()
}

#[test]
fn single_node_campaign_is_identical_across_threads_and_chunks() {
    let base = single_node_config();
    let baseline = run_single_node_campaign_threads(1, &base, REPLICATIONS, |_| make_sources());
    let baseline_rows: Vec<Vec<String>> = baseline.iter().map(single_node_csv_rows).collect();
    let baseline_metrics = single_node_metrics_json(&baseline);

    for threads in THREAD_COUNTS {
        for chunk in chunk_sweep() {
            let reports = run_single_node_campaign_chunked_threads(
                threads,
                chunk,
                &base,
                REPLICATIONS,
                |_| make_sources(),
            );
            assert_eq!(reports.len() as u64, REPLICATIONS);
            for (r, rep) in reports.iter().enumerate() {
                assert_eq!(
                    single_node_csv_rows(rep),
                    baseline_rows[r],
                    "threads={threads} chunk={chunk:?} replication {r}: CSV rows diverge"
                );
            }
            assert_eq!(
                single_node_metrics_json(&reports),
                baseline_metrics,
                "threads={threads} chunk={chunk:?}: metrics fold diverges"
            );
        }
    }
}

#[test]
fn network_campaign_is_identical_across_threads_and_chunks() {
    let base = network_config();
    let baseline =
        run_network_campaign_chunked_threads(1, Some(1), &base, REPLICATIONS, |_| make_sources());
    let baseline_rows: Vec<Vec<String>> = baseline.iter().map(network_csv_rows).collect();

    for threads in THREAD_COUNTS {
        for chunk in chunk_sweep() {
            let reports =
                run_network_campaign_chunked_threads(threads, chunk, &base, REPLICATIONS, |_| {
                    make_sources()
                });
            assert_eq!(reports.len() as u64, REPLICATIONS);
            for (r, rep) in reports.iter().enumerate() {
                assert_eq!(
                    network_csv_rows(rep),
                    baseline_rows[r],
                    "threads={threads} chunk={chunk:?} replication {r}: CSV rows diverge"
                );
            }
        }
    }
}

#[test]
fn merged_campaign_is_thread_invariant_at_fixed_chunk() {
    let base = single_node_config();
    let baseline = run_single_node_campaign_merged_threads(1, Some(2), &base, REPLICATIONS, |_| {
        make_sources()
    });
    let baseline_rows = single_node_csv_rows(&baseline);
    for threads in THREAD_COUNTS {
        let merged =
            run_single_node_campaign_merged_threads(threads, Some(2), &base, REPLICATIONS, |_| {
                make_sources()
            });
        assert_eq!(
            single_node_csv_rows(&merged),
            baseline_rows,
            "threads={threads}: merged campaign diverges at fixed chunk"
        );
    }
}

#[test]
fn merged_campaign_ccdf_counts_match_vec_campaign_at_any_chunk() {
    let base = single_node_config();
    let reports = run_single_node_campaign_threads(1, &base, REPLICATIONS, |_| make_sources());
    let pooled = merge_single_node_reports(&reports);
    // The pooled CCDF tails are ratios of exact u64 counts; they cannot
    // depend on how replications were grouped into chunks.
    for chunk in [1usize, 2, 4, REPLICATIONS as usize] {
        let merged =
            run_single_node_campaign_merged_threads(4, Some(chunk), &base, REPLICATIONS, |_| {
                make_sources()
            });
        assert_eq!(merged.measured_slots, pooled.measured_slots);
        for (i, (a, b)) in merged.sessions.iter().zip(&pooled.sessions).enumerate() {
            assert_eq!(a.backlog.len(), b.backlog.len(), "session {i} backlog n");
            assert_eq!(a.delay.len(), b.delay.len(), "session {i} delay n");
            for ((xa, pa), (xb, pb)) in a.backlog.series().iter().zip(&b.backlog.series()) {
                assert_eq!(xa.to_bits(), xb.to_bits());
                assert_eq!(
                    pa.to_bits(),
                    pb.to_bits(),
                    "chunk={chunk} session {i}: pooled backlog tail diverges at x={xa}"
                );
            }
            for ((xa, pa), (xb, pb)) in a.delay.series().iter().zip(&b.delay.series()) {
                assert_eq!(xa.to_bits(), xb.to_bits());
                assert_eq!(
                    pa.to_bits(),
                    pb.to_bits(),
                    "chunk={chunk} session {i}: pooled delay tail diverges at x={xa}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Supervised campaigns under chunking: restore, retry, and quarantine
// must be byte-identical for every chunk size.
// ---------------------------------------------------------------------

fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gps_campaign_scaling_it_{}_{tag}.ndjson",
        std::process::id()
    ))
}

/// Simulates a crash mid-append: keeps the first `keep` complete
/// checkpoint lines plus the first half of the next one (a torn write),
/// discarding the rest.
fn truncate_checkpoint(path: &Path, keep: usize) {
    let content = std::fs::read_to_string(path).expect("read checkpoint");
    let lines: Vec<&str> = content.split_inclusive('\n').collect();
    assert!(lines.len() > keep, "checkpoint too short to truncate");
    let mut kept: String = lines[..keep].concat();
    let torn = lines[keep];
    kept.push_str(&torn[..torn.len() / 2]);
    std::fs::write(path, kept).expect("rewrite checkpoint");
}

#[test]
fn supervised_resume_is_chunk_invariant() {
    let base = single_node_config();
    let baseline = run_single_node_campaign_threads(1, &base, REPLICATIONS, |_| make_sources());
    let baseline_rows: Vec<Vec<String>> = baseline.iter().map(single_node_csv_rows).collect();

    for (tag, chunk) in [("c1", Some(1)), ("cd", None), ("call", Some(6))] {
        let ckpt = temp_ckpt(tag);
        let _ = std::fs::remove_file(&ckpt);
        let sup = Supervisor::new().with_checkpoint(&ckpt).with_resume(true);
        // First pass writes the checkpoint; then crash it mid-line and
        // resume with a *different* chunk size than the first pass.
        run_supervised_single_node_campaign_chunked_threads(
            2,
            chunk,
            &base,
            REPLICATIONS,
            |_| make_sources(),
            &sup,
            None,
        )
        .expect("first pass");
        truncate_checkpoint(&ckpt, 3);
        let outcome = run_supervised_single_node_campaign_chunked_threads(
            4,
            Some(2),
            &base,
            REPLICATIONS,
            |_| make_sources(),
            &sup,
            None,
        )
        .expect("resumed pass");
        assert_eq!(
            outcome.restored, 3,
            "chunk={chunk:?}: torn checkpoint should restore 3 replications"
        );
        let reports = outcome.completed();
        assert_eq!(reports.len() as u64, REPLICATIONS);
        for (r, rep) in reports.iter().enumerate() {
            assert_eq!(
                single_node_csv_rows(rep),
                baseline_rows[r],
                "chunk={chunk:?} replication {r}: resumed rows diverge"
            );
        }
        let _ = std::fs::remove_file(&ckpt);
    }
}

#[test]
fn supervised_retry_and_quarantine_are_chunk_invariant() {
    let base = single_node_config();
    let baseline = run_single_node_campaign_threads(1, &base, REPLICATIONS, |_| make_sources());
    let baseline_rows: Vec<Vec<String>> = baseline.iter().map(single_node_csv_rows).collect();

    for chunk in chunk_sweep() {
        // Replication 2 panics on attempt 1 only (transient): it must
        // retry to a byte-identical report at any chunk size.
        let sup = Supervisor::new().with_inject(Some(PanicInjection {
            replication: 2,
            once: true,
        }));
        let outcome = run_supervised_single_node_campaign_chunked_threads(
            4,
            chunk,
            &base,
            REPLICATIONS,
            |_| make_sources(),
            &sup,
            None,
        )
        .expect("transient campaign");
        assert!(outcome.quarantined.is_empty(), "chunk={chunk:?}");
        let retried = &outcome.tasks[2];
        assert_eq!(retried.attempts, 2, "chunk={chunk:?}: one retry expected");
        let reports = outcome.completed();
        assert_eq!(reports.len() as u64, REPLICATIONS);
        for (r, rep) in reports.iter().enumerate() {
            assert_eq!(
                single_node_csv_rows(rep),
                baseline_rows[r],
                "chunk={chunk:?} replication {r}: retried rows diverge"
            );
        }

        // Replication 4 always panics (permanent): quarantined, the
        // other replications still byte-identical.
        let sup = Supervisor::new().with_inject(Some(PanicInjection {
            replication: 4,
            once: false,
        }));
        let outcome = run_supervised_single_node_campaign_chunked_threads(
            4,
            chunk,
            &base,
            REPLICATIONS,
            |_| make_sources(),
            &sup,
            None,
        )
        .expect("permanent campaign");
        assert_eq!(outcome.quarantined, vec![4], "chunk={chunk:?}");
        assert!(
            matches!(outcome.tasks[4].outcome, TaskOutcome::Panicked(_)),
            "chunk={chunk:?}: replication 4 should be quarantined"
        );
        let mut surviving = 0u64;
        for (r, t) in outcome.tasks.iter().enumerate() {
            if let TaskOutcome::Ok(rep) = &t.outcome {
                assert_eq!(
                    single_node_csv_rows(rep),
                    baseline_rows[r],
                    "chunk={chunk:?} replication {r}: surviving rows diverge"
                );
                surviving += 1;
            }
        }
        assert_eq!(surviving, REPLICATIONS - 1, "chunk={chunk:?}");
    }
}

// ---------------------------------------------------------------------
// Smoke-scale: 10^5 replications through the memory-bounded merged
// campaign. Ignored by default (seconds of wall-clock); verify.sh and
// humans run it with `cargo test -- --ignored`.
// ---------------------------------------------------------------------

#[test]
#[ignore = "smoke-scale: ~1e5 replications, run explicitly"]
fn merged_campaign_smoke_scale_parallel_not_slower_than_serial() {
    // Tiny per-replication work so the test measures engine overhead
    // (scheduling, scratch reuse, contention), not simulation time.
    let base = SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 0,
        measure: 12,
        seed: 0x5CA1E,
        backlog_grid: (0..8).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..8).map(|i| i as f64).collect(),
    };
    let reps: u64 = 100_000;
    let threads = gps_par::max_threads().max(2);

    let t0 = std::time::Instant::now();
    let serial = run_single_node_campaign_merged_threads(1, None, &base, reps, |_| make_sources());
    let serial_elapsed = t0.elapsed();

    let t1 = std::time::Instant::now();
    let parallel =
        run_single_node_campaign_merged_threads(threads, None, &base, reps, |_| make_sources());
    let parallel_elapsed = t1.elapsed();

    assert_eq!(serial.measured_slots, reps * base.measure);
    assert_eq!(parallel.measured_slots, serial.measured_slots);
    // Pooled counts are chunk-independent, so the tails must agree
    // exactly even though the default chunk differs between runs.
    for (a, b) in serial.sessions.iter().zip(&parallel.sessions) {
        assert_eq!(a.backlog.len(), b.backlog.len());
        assert_eq!(a.delay.len(), b.delay.len());
    }

    // The historical regression this guards: adding workers made
    // campaigns *slower*. Allow 25% noise margin (CI boxes vary), but a
    // 1.5x+ slowdown like the pre-chunking engine fails loudly.
    let ratio = parallel_elapsed.as_secs_f64() / serial_elapsed.as_secs_f64();
    assert!(
        ratio <= 1.25,
        "{threads}-worker merged campaign took {ratio:.2}x the 1-worker time \
         ({parallel_elapsed:?} vs {serial_elapsed:?})"
    );
}
