//! End-to-end reproduction checks against the paper's printed numbers:
//! Table 1, Table 2, the Figure-3 bound parameters, and the Figure-4
//! shape claims. These pin the whole pipeline (sources → spectral →
//! characterization → network bounds) to the paper.

use gps_qos::prelude::*;

fn characterize_set(rhos: [f64; 4]) -> Vec<EbbProcess> {
    let sources = OnOffSource::paper_table1();
    (0..4)
        .map(|i| {
            Lnt94Characterization::characterize(
                sources[i].as_markov(),
                rhos[i],
                PrefactorKind::Lnt94,
            )
            .unwrap()
            .ebb
        })
        .collect()
}

#[test]
fn table1_means() {
    let want = [0.15, 0.2, 0.15, 0.2];
    for (s, w) in OnOffSource::paper_table1().iter().zip(want) {
        assert!((s.mean() - w).abs() < 1e-12);
    }
}

#[test]
fn table2_full_reproduction() {
    type SetCase = ([f64; 4], [(f64, f64); 4]);
    let cases: [SetCase; 2] = [
        (
            [0.20, 0.25, 0.20, 0.25],
            [(1.0, 1.74), (0.92, 1.76), (0.84, 2.13), (1.0, 1.62)],
        ),
        (
            [0.17, 0.22, 0.17, 0.22],
            [(1.0, 0.729), (0.968, 0.672), (0.929, 0.775), (1.0, 0.655)],
        ),
    ];
    for (rhos, printed) in cases {
        let got = characterize_set(rhos);
        for (e, (lam, alpha)) in got.iter().zip(printed) {
            assert!(
                (e.lambda - lam).abs() < 0.005,
                "Λ mismatch: got {} want {lam}",
                e.lambda
            );
            assert!(
                (e.alpha - alpha).abs() < 0.005,
                "α mismatch: got {} want {alpha}",
                e.alpha
            );
        }
    }
}

#[test]
fn figure3_bound_parameters() {
    // Set 1 on the Figure-2 network: bottleneck rates and the Eq. 66/67
    // closed forms.
    let rhos = [0.20, 0.25, 0.20, 0.25];
    let sessions = characterize_set(rhos);
    let net = NetworkTopology::paper_figure2(rhos);
    let b = RppsNetworkBounds::new(&net, sessions.clone()).unwrap();
    // Paper: g1 ≈ 0.22 under Set 1 (0.2/0.9).
    assert!((b.g_net(0) - 0.2 / 0.9).abs() < 1e-12);
    for (i, s) in sessions.iter().enumerate() {
        let (q, d) = b.paper_fig3_bounds(i);
        let g = b.g_net(i);
        let want_pref = s.lambda / (1.0 - (-s.alpha * (g - s.rho)).exp());
        assert!((q.prefactor - want_pref).abs() < 1e-9);
        assert!((d.decay - s.alpha * g).abs() < 1e-12);
    }
}

#[test]
fn figure3_set2_vs_set1_shape() {
    // The Section-6.3 discussion: Set 2's bounds decay much slower, and
    // the guaranteed rates barely move (g1: .222 -> .218; g2: .278 ->
    // .282).
    let s1 = characterize_set([0.20, 0.25, 0.20, 0.25]);
    let s2 = characterize_set([0.17, 0.22, 0.17, 0.22]);
    let n1 = NetworkTopology::paper_figure2([0.20, 0.25, 0.20, 0.25]);
    let n2 = NetworkTopology::paper_figure2([0.17, 0.22, 0.17, 0.22]);
    let b1 = RppsNetworkBounds::new(&n1, s1).unwrap();
    let b2 = RppsNetworkBounds::new(&n2, s2).unwrap();
    assert!((b2.g_net(0) - 0.218).abs() < 0.001);
    assert!((b2.g_net(1) - 0.282).abs() < 0.001);
    for i in 0..4 {
        let d1 = b1.paper_fig3_bounds(i).1.decay;
        let d2 = b2.paper_fig3_bounds(i).1.decay;
        assert!(d2 < 0.5 * d1, "session {i}: {d2} !< half of {d1}");
    }
}

#[test]
fn figure4_improvement_shape() {
    // Under Set 2, the LNT94-direct bounds (i) decay much faster than the
    // E.B.B. bounds and (ii) restore the ordering: sessions 2 and 4
    // (larger g) decay faster than session 1.
    let rhos = [0.17, 0.22, 0.17, 0.22];
    let sessions = characterize_set(rhos);
    let net = NetworkTopology::paper_figure2(rhos);
    let b = RppsNetworkBounds::new(&net, sessions).unwrap();
    let sources = OnOffSource::paper_table1();
    let mut improved_decay = [0.0; 4];
    for i in 0..4 {
        let g = b.g_net(i);
        let delta = queue_tail_bound(sources[i].as_markov(), g).unwrap();
        let (_, d) = b.with_delta_bound(i, delta);
        let (_, ebb_d) = b.paper_fig3_bounds(i);
        assert!(
            d.decay > 2.0 * ebb_d.decay,
            "session {i}: improved {} vs ebb {}",
            d.decay,
            ebb_d.decay
        );
        improved_decay[i] = d.decay;
    }
    assert!(improved_decay[1] > improved_decay[0]);
    assert!(improved_decay[3] > improved_decay[0]);
}

#[test]
fn rpps_collapses_partition_and_matches_theorem10() {
    let rhos = [0.20, 0.25, 0.20, 0.25];
    let sessions = characterize_set(rhos);
    let assignment = GpsAssignment::rpps(&rhos, 1.0);
    let t11 = Theorem11::new(sessions.clone(), assignment.clone(), TimeModel::Discrete).unwrap();
    assert_eq!(t11.partition().num_classes(), 1);
    // Theorem 10 applies to every session; CRST analysis of the network
    // agrees there's one global class.
    let crst = CrstAnalysis::new(
        NetworkTopology::paper_figure2(rhos),
        sessions
            .iter()
            .map(|&source| NetworkSession { source })
            .collect(),
        TimeModel::Discrete,
    )
    .unwrap();
    assert_eq!(crst.num_classes(), 1);
}
