//! Golden regression tests pinning the repository's own reproduced numbers
//! from EXPERIMENTS.md — Table 1, Table 2, Figure 3, and Figure 4 — to the
//! printed precision (half an ulp of the last printed digit, plus a sliver
//! of slack for the rounding boundary).
//!
//! These are intentionally tighter than `tests/paper_reproduction.rs`
//! (which checks against the *paper's* 2-significant-digit printing): any
//! change to the spectral solver, the LNT94 prefactor, or the RPPS
//! bound algebra that moves a published digit must show up as a diff here
//! AND in EXPERIMENTS.md, together.

use gps_qos::prelude::*;

/// Half-ulp tolerances for values printed to 4, 3, and 2 decimals.
const TOL4: f64 = 5.5e-5;
const TOL3: f64 = 5.5e-4;
const TOL2: f64 = 5.5e-3;

fn assert_close(got: f64, printed: f64, tol: f64, what: &str) {
    assert!(
        (got - printed).abs() < tol,
        "{what}: got {got}, EXPERIMENTS.md prints {printed} (tol {tol})"
    );
}

fn characterize_set(rhos: [f64; 4]) -> Vec<EbbProcess> {
    let sources = OnOffSource::paper_table1();
    (0..4)
        .map(|i| {
            Lnt94Characterization::characterize(
                sources[i].as_markov(),
                rhos[i],
                PrefactorKind::Lnt94,
            )
            .unwrap()
            .ebb
        })
        .collect()
}

fn set_rhos(set: usize) -> [f64; 4] {
    match set {
        1 => [0.20, 0.25, 0.20, 0.25],
        2 => [0.17, 0.22, 0.17, 0.22],
        _ => unreachable!(),
    }
}

/// Table 1, "λ̄ ours" column: the analytic on-off means.
#[test]
fn golden_table1_mean_rates() {
    let printed = [0.15, 0.2, 0.15, 0.2];
    for (i, (s, want)) in OnOffSource::paper_table1().iter().zip(printed).enumerate() {
        // These are exact rational identities (λ̄ = λ·q/(p+q)), so pin far
        // below printing precision.
        assert!(
            (s.mean() - want).abs() < 1e-12,
            "table1 session {}: mean {} != {want}",
            i + 1,
            s.mean()
        );
    }
}

/// Table 2, "ours (Λ, α)" column: all eight LNT94 characterizations.
#[test]
fn golden_table2_characterizations() {
    let printed: [[(f64, f64); 4]; 2] = [
        [
            (1.0000, 1.742),
            (0.9244, 1.761),
            (0.8420, 2.127),
            (1.0000, 1.622),
        ],
        [
            (1.0000, 0.729),
            (0.9678, 0.672),
            (0.9293, 0.775),
            (1.0000, 0.655),
        ],
    ];
    for set in [1usize, 2] {
        let got = characterize_set(set_rhos(set));
        for (i, (e, (lam, alpha))) in got.iter().zip(printed[set - 1]).enumerate() {
            assert_close(
                e.lambda,
                lam,
                TOL4,
                &format!("table2 set {set} session {} Λ", i + 1),
            );
            assert_close(
                e.alpha,
                alpha,
                TOL3,
                &format!("table2 set {set} session {} α", i + 1),
            );
        }
    }
    // Sessions 1 and 4 are i.i.d. (p + q = 1), so Λ = 1 analytically; the
    // numerical eigensolve reproduces it to solver precision (the identity
    // is structural, not bit-exact — see EXPERIMENTS.md).
    for set in [1usize, 2] {
        let got = characterize_set(set_rhos(set));
        for i in [0usize, 3] {
            assert!(
                (got[i].lambda - 1.0).abs() < 1e-9,
                "set {set} session {} Λ {} should be 1 to solver precision",
                i + 1,
                got[i].lambda
            );
        }
    }
}

/// Figure 3: the Eq. 66/67 bound parameters on the Figure-2 RPPS network —
/// guaranteed network rates g, delay-bound prefactors, and delay decays,
/// for both parameter sets.
#[test]
fn golden_figure3_bound_parameters() {
    struct SetGolden {
        rhos: [f64; 4],
        g: [f64; 4],
        decay: [f64; 4],
        /// Delay prefactors; Set 1 printed in the Fig-3 section, Set 2 in
        /// the Fig-4 table's "E.B.B." column.
        prefactor: [f64; 4],
    }
    let golden = [
        SetGolden {
            rhos: set_rhos(1),
            g: [0.2222, 0.2778, 0.2222, 0.2778],
            decay: [0.387, 0.489, 0.473, 0.451],
            prefactor: [26.33, 19.37, 18.24, 22.70],
        },
        SetGolden {
            rhos: set_rhos(2),
            g: [0.2179, 0.2821, 0.2179, 0.2821],
            decay: [0.159, 0.190, 0.169, 0.185],
            prefactor: [29.11, 23.68, 25.48, 25.11],
        },
    ];
    for (k, sg) in golden.iter().enumerate() {
        let set = k + 1;
        let sessions = characterize_set(sg.rhos);
        let net = NetworkTopology::paper_figure2(sg.rhos);
        let b = RppsNetworkBounds::new(&net, sessions).unwrap();
        for i in 0..4 {
            let (_, d) = b.paper_fig3_bounds(i);
            assert_close(
                b.g_net(i),
                sg.g[i],
                TOL4,
                &format!("fig3 set {set} session {} g", i + 1),
            );
            assert_close(
                d.decay,
                sg.decay[i],
                TOL3,
                &format!("fig3 set {set} session {} delay decay", i + 1),
            );
            assert_close(
                d.prefactor,
                sg.prefactor[i],
                TOL2,
                &format!("fig3 set {set} session {} delay prefactor", i + 1),
            );
        }
    }
}

/// Figure 4: the LNT94-direct improved bounds under Set 2 — prefactor and
/// delay decay per session, as tabulated in EXPERIMENTS.md.
#[test]
fn golden_figure4_improved_bounds() {
    let printed: [(f64, f64); 4] = [
        (1.000, 0.508),
        (1.149, 0.902),
        (1.335, 0.699),
        (1.000, 0.759),
    ];
    let rhos = set_rhos(2);
    let sessions = characterize_set(rhos);
    let net = NetworkTopology::paper_figure2(rhos);
    let b = RppsNetworkBounds::new(&net, sessions).unwrap();
    let sources = OnOffSource::paper_table1();
    for i in 0..4 {
        let g = b.g_net(i);
        let delta = queue_tail_bound(sources[i].as_markov(), g).unwrap();
        let (_, d) = b.with_delta_bound(i, delta);
        assert_close(
            d.prefactor,
            printed[i].0,
            TOL3,
            &format!("fig4 session {} improved prefactor", i + 1),
        );
        assert_close(
            d.decay,
            printed[i].1,
            TOL3,
            &format!("fig4 session {} improved delay decay", i + 1),
        );
    }
}
