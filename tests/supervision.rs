//! End-to-end supervision guarantees for the measurement campaigns: a
//! campaign that is killed mid-flight and resumed from its crash-safe
//! checkpoint — or that loses a replication to a transient panic and
//! retries it — must produce *byte-identical* CSV rows and metrics to a
//! straight-through run, at any worker count.
//!
//! These are the integration-level counterparts of the unit tests in
//! `gps_sim::supervise`: they exercise the full pipeline (supervised
//! campaign → merge → `{:.10e}` CSV formatting → metrics fold →
//! `to_json_without_spans`), i.e. exactly what the experiment binaries
//! write to `results/`.

use gps_obs::metrics::Registry;
use gps_qos::prelude::*;
use gps_sim::runner::{
    merge_network_reports, merge_single_node_reports, record_network_metrics,
    record_single_node_metrics, NetworkRunReport, SingleNodeRunReport,
};
use gps_sim::supervise::{
    run_supervised_network_campaign_threads, run_supervised_single_node_campaign_threads,
    PanicInjection, Supervisor,
};
use gps_sources::SlotSource;
use std::path::{Path, PathBuf};

const REPLICATIONS: u64 = 6;

fn single_node_config() -> SingleNodeRunConfig {
    SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 500,
        measure: 8_000,
        seed: 0x5A5A,
        backlog_grid: (0..60).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..60).map(|i| i as f64).collect(),
    }
}

fn network_config() -> NetworkRunConfig {
    NetworkRunConfig {
        topology: NetworkTopology::paper_figure2([0.2, 0.25, 0.2, 0.25]),
        warmup: 500,
        measure: 6_000,
        seed: 0xF00D,
        backlog_grid: (0..40).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..40).map(|i| i as f64).collect(),
    }
}

fn make_sources() -> Vec<Box<dyn SlotSource>> {
    OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect()
}

fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gps_supervision_it_{}_{tag}.ndjson",
        std::process::id()
    ))
}

/// Simulates a crash mid-append: keeps the first `keep` complete
/// checkpoint lines plus the first half of the next one (a torn write),
/// discarding the rest.
fn truncate_checkpoint(path: &Path, keep: usize) {
    let content = std::fs::read_to_string(path).expect("read checkpoint");
    let lines: Vec<&str> = content.split_inclusive('\n').collect();
    assert!(
        lines.len() > keep,
        "checkpoint has {} lines, cannot keep {keep} + a torn one",
        lines.len()
    );
    let mut kept: String = lines[..keep].concat();
    let torn = lines[keep];
    kept.push_str(&torn[..torn.len() / 2]);
    std::fs::write(path, kept).expect("rewrite checkpoint");
}

/// CSV rows exactly as the experiment binaries format them (`{:.10e}`
/// cells), so equality here means byte-identical output files.
fn single_node_csv_rows(report: &SingleNodeRunReport) -> Vec<String> {
    let mut rows = Vec::new();
    for (i, s) in report.sessions.iter().enumerate() {
        for (x, p) in s.backlog.series() {
            rows.push(format!("{i},0,{x:.10e},{p:.10e}"));
        }
        for (x, p) in s.delay.series() {
            rows.push(format!("{i},1,{x:.10e},{p:.10e}"));
        }
        rows.push(format!("{i},tput,{:.10e}", s.throughput));
    }
    rows
}

fn network_csv_rows(report: &NetworkRunReport) -> Vec<String> {
    let mut rows = Vec::new();
    for i in 0..report.backlog.len() {
        for (x, p) in report.backlog[i].series() {
            rows.push(format!("{i},0,{x:.10e},{p:.10e}"));
        }
        for (x, p) in report.delay[i].series() {
            rows.push(format!("{i},1,{x:.10e},{p:.10e}"));
        }
    }
    rows
}

fn single_node_metrics_json(reports: &[SingleNodeRunReport]) -> String {
    let reg = Registry::new();
    for r in reports {
        record_single_node_metrics(&reg, r);
    }
    reg.snapshot().to_json_without_spans()
}

fn network_metrics_json(reports: &[NetworkRunReport]) -> String {
    let reg = Registry::new();
    for r in reports {
        record_network_metrics(&reg, r);
    }
    reg.snapshot().to_json_without_spans()
}

#[test]
fn killed_and_resumed_single_node_campaign_is_byte_identical() {
    let base = single_node_config();

    // Straight-through baseline (serial, no checkpoint).
    let baseline = run_supervised_single_node_campaign_threads(
        1,
        &base,
        REPLICATIONS,
        |_r| make_sources(),
        &Supervisor::new(),
        None,
    )
    .expect("baseline campaign");
    assert_eq!(baseline.restored, 0);
    assert!(baseline.quarantined.is_empty());
    let baseline_reports = baseline.completed();
    let baseline_rows = single_node_csv_rows(&merge_single_node_reports(&baseline_reports));
    let baseline_metrics = single_node_metrics_json(&baseline_reports);

    for threads in [1usize, 4] {
        let ckpt = temp_ckpt(&format!("single_kill_t{threads}"));

        // Full checkpointed run, then simulate a crash that tears the
        // fourth checkpoint line mid-append.
        run_supervised_single_node_campaign_threads(
            threads,
            &base,
            REPLICATIONS,
            |_r| make_sources(),
            &Supervisor::new().with_checkpoint(&ckpt),
            None,
        )
        .expect("checkpointed campaign");
        truncate_checkpoint(&ckpt, 3);

        // Resume: the three intact lines restore, the torn one and the
        // missing tail recompute.
        let resumed = run_supervised_single_node_campaign_threads(
            threads,
            &base,
            REPLICATIONS,
            |_r| make_sources(),
            &Supervisor::new().with_checkpoint(&ckpt).with_resume(true),
            None,
        )
        .expect("resumed campaign");
        assert_eq!(
            resumed.restored, 3,
            "threads {threads}: torn line must not restore"
        );
        assert!(resumed.quarantined.is_empty());

        let reports = resumed.completed();
        assert_eq!(
            single_node_csv_rows(&merge_single_node_reports(&reports)),
            baseline_rows,
            "threads {threads}: resumed CSV rows diverge from straight-through"
        );
        assert_eq!(
            single_node_metrics_json(&reports),
            baseline_metrics,
            "threads {threads}: resumed metrics diverge from straight-through"
        );
        let _ = std::fs::remove_file(&ckpt);
    }
}

#[test]
fn killed_and_resumed_network_campaign_is_byte_identical() {
    let base = network_config();

    let baseline = run_supervised_network_campaign_threads(
        1,
        &base,
        REPLICATIONS,
        |_r| make_sources(),
        &Supervisor::new(),
        None,
    )
    .expect("baseline campaign");
    let baseline_reports = baseline.completed();
    let baseline_rows = network_csv_rows(&merge_network_reports(&baseline_reports));
    let baseline_metrics = network_metrics_json(&baseline_reports);

    for threads in [1usize, 4] {
        let ckpt = temp_ckpt(&format!("network_kill_t{threads}"));
        run_supervised_network_campaign_threads(
            threads,
            &base,
            REPLICATIONS,
            |_r| make_sources(),
            &Supervisor::new().with_checkpoint(&ckpt),
            None,
        )
        .expect("checkpointed campaign");
        truncate_checkpoint(&ckpt, 3);

        let resumed = run_supervised_network_campaign_threads(
            threads,
            &base,
            REPLICATIONS,
            |_r| make_sources(),
            &Supervisor::new().with_checkpoint(&ckpt).with_resume(true),
            None,
        )
        .expect("resumed campaign");
        assert_eq!(resumed.restored, 3);

        let reports = resumed.completed();
        assert_eq!(
            network_csv_rows(&merge_network_reports(&reports)),
            baseline_rows,
            "threads {threads}: resumed CSV rows diverge from straight-through"
        );
        assert_eq!(
            network_metrics_json(&reports),
            baseline_metrics,
            "threads {threads}: resumed metrics diverge from straight-through"
        );
        let _ = std::fs::remove_file(&ckpt);
    }
}

#[test]
fn transient_panic_retries_to_byte_identical_output() {
    let base = single_node_config();
    let clean = run_supervised_single_node_campaign_threads(
        1,
        &base,
        REPLICATIONS,
        |_r| make_sources(),
        &Supervisor::new(),
        None,
    )
    .expect("clean campaign");
    let clean_reports = clean.completed();

    for threads in [1usize, 4] {
        let faulted = run_supervised_single_node_campaign_threads(
            threads,
            &base,
            REPLICATIONS,
            |_r| make_sources(),
            &Supervisor::new().with_inject(Some(PanicInjection {
                replication: 2,
                once: true,
            })),
            None,
        )
        .expect("faulted campaign");
        assert!(faulted.quarantined.is_empty(), "transient panic recovered");
        assert_eq!(faulted.tasks[2].attempts, 2, "replication 2 was retried");

        let reports = faulted.completed();
        assert_eq!(
            single_node_csv_rows(&merge_single_node_reports(&reports)),
            single_node_csv_rows(&merge_single_node_reports(&clean_reports)),
            "threads {threads}: retried campaign diverges from clean run"
        );
        assert_eq!(
            single_node_metrics_json(&reports),
            single_node_metrics_json(&clean_reports),
            "threads {threads}: retried metrics diverge from clean run"
        );
    }
}

#[test]
fn permanent_panic_quarantines_and_campaign_completes() {
    let base = single_node_config();
    let outcome = run_supervised_single_node_campaign_threads(
        2,
        &base,
        REPLICATIONS,
        |_r| make_sources(),
        &Supervisor::new().with_inject(Some(PanicInjection {
            replication: 4,
            once: false,
        })),
        None,
    )
    .expect("campaign with permanent fault");
    assert_eq!(outcome.quarantined, vec![4]);
    let reports = outcome.completed();
    assert_eq!(reports.len() as u64, REPLICATIONS - 1);
    // The survivors still merge into a usable report.
    let merged = merge_single_node_reports(&reports);
    assert_eq!(
        merged.measured_slots,
        base.measure * (REPLICATIONS - 1),
        "merged report covers exactly the surviving replications"
    );
}
