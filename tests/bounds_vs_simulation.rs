//! Integration: analytical bounds must dominate simulated tails.
//!
//! Medium-length runs (kept CI-friendly); the full-length studies live in
//! the `validate_single` / `validate_network` experiment binaries.

use gps_qos::prelude::*;

fn se(p: f64, n: u64) -> f64 {
    (p * (1.0 - p) / n as f64).sqrt()
}

#[test]
fn single_node_rpps_bounds_dominate() {
    let sources = OnOffSource::paper_table1();
    let rhos = [0.2, 0.25, 0.2, 0.25];
    let sessions: Vec<EbbProcess> = (0..4)
        .map(|i| {
            Lnt94Characterization::characterize(
                sources[i].as_markov(),
                rhos[i],
                PrefactorKind::Lnt94,
            )
            .unwrap()
            .ebb
        })
        .collect();
    let assignment = GpsAssignment::rpps(&rhos, 1.0);

    let cfg = SingleNodeRunConfig {
        phis: rhos.to_vec(),
        capacity: 1.0,
        warmup: 20_000,
        measure: 400_000,
        seed: 7,
        backlog_grid: (0..40).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..60).map(|i| i as f64).collect(),
    };
    let mut boxed: Vec<Box<dyn SlotSource>> = sources
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect();
    let rep = run_single_node(&mut boxed, &cfg);

    for (i, &sess) in sessions.iter().enumerate() {
        let g = assignment.guaranteed_rate(i);
        let (qb, db) = theorem10(sess, g, TimeModel::Discrete);
        for (x, p) in rep.sessions[i].backlog.series() {
            assert!(
                p <= qb.tail(x) + 3.0 * se(p, cfg.measure) + 1e-9,
                "backlog session {i} at {x}: emp {p} bound {}",
                qb.tail(x)
            );
        }
        for (x, p) in rep.sessions[i].delay.series() {
            assert!(
                p <= db.tail(x) + 3.0 * se(p, cfg.measure) + 1e-9,
                "delay session {i} at {x}: emp {p} bound {}",
                db.tail(x)
            );
        }
    }
}

#[test]
fn single_node_improved_bounds_dominate() {
    // The sharper LNT94-direct bounds must also hold (tighter margin).
    let sources = OnOffSource::paper_table1();
    let rhos = [0.2, 0.25, 0.2, 0.25];
    let assignment = GpsAssignment::rpps(&rhos, 1.0);
    let cfg = SingleNodeRunConfig {
        phis: rhos.to_vec(),
        capacity: 1.0,
        warmup: 20_000,
        measure: 400_000,
        seed: 11,
        backlog_grid: (0..40).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..60).map(|i| i as f64).collect(),
    };
    let markov = sources.clone();
    let mut boxed: Vec<Box<dyn SlotSource>> = sources
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect();
    let rep = run_single_node(&mut boxed, &cfg);
    for (i, m) in markov.iter().enumerate() {
        let g = assignment.guaranteed_rate(i);
        let qb = queue_tail_bound(m.as_markov(), g).unwrap();
        for (x, p) in rep.sessions[i].backlog.series() {
            assert!(
                p <= qb.tail(x) + 3.0 * se(p, cfg.measure) + 1e-9,
                "improved backlog session {i} at {x}: emp {p} bound {}",
                qb.tail(x)
            );
        }
    }
}

#[test]
fn network_theorem15_dominates() {
    let sources = OnOffSource::paper_table1();
    let rhos = [0.2, 0.25, 0.2, 0.25];
    let sessions: Vec<EbbProcess> = (0..4)
        .map(|i| {
            Lnt94Characterization::characterize(
                sources[i].as_markov(),
                rhos[i],
                PrefactorKind::Lnt94,
            )
            .unwrap()
            .ebb
        })
        .collect();
    let topo = NetworkTopology::paper_figure2(rhos);
    let bounds = RppsNetworkBounds::new(&topo, sessions).unwrap();
    let cfg = NetworkRunConfig {
        topology: topo,
        warmup: 20_000,
        measure: 400_000,
        seed: 13,
        backlog_grid: (0..40).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..80).map(|i| i as f64).collect(),
    };
    let mut boxed: Vec<Box<dyn SlotSource>> = sources
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect();
    let rep = run_network(&mut boxed, &cfg);
    for i in 0..4 {
        let (qb, db) = bounds.paper_fig3_bounds(i);
        for (x, p) in rep.backlog[i].series() {
            assert!(
                p <= qb.tail(x) + 3.0 * se(p, cfg.measure) + 1e-9,
                "net backlog session {i} at {x}"
            );
        }
        for (x, p) in rep.delay[i].series() {
            // One slot of store-and-forward pipeline subtracted.
            let x_adj = (x - 1.0).max(0.0);
            assert!(
                p <= db.tail(x_adj) + 3.0 * se(p, cfg.measure) + 1e-9,
                "net delay session {i} at {x}: emp {p} bound {}",
                db.tail(x_adj)
            );
        }
    }
}

#[test]
fn overload_breaks_the_premise_not_the_simulator() {
    // A faulty (rate-scaled) source pushes utilization past 1: the
    // simulator keeps conserving work while backlog grows linearly — and
    // the analysis correctly refuses to produce bounds.
    let rhos = [0.5, 0.5];
    let cfg = SingleNodeRunConfig {
        phis: rhos.to_vec(),
        capacity: 1.0,
        warmup: 0,
        measure: 20_000,
        seed: 3,
        backlog_grid: vec![0.0, 100.0, 1000.0],
        delay_grid: vec![0.0, 100.0],
    };
    let base0 = OnOffSource::new(0.5, 0.5, 1.2);
    let base1 = OnOffSource::new(0.5, 0.5, 1.2);
    let mut boxed: Vec<Box<dyn SlotSource>> = vec![
        Box::new(FaultySource::new(
            base0,
            gps_qos::sim::faults::FaultConfig {
                rate_scale: 1.5,
                ..Default::default()
            },
        )),
        Box::new(base1),
    ];
    let rep = run_single_node(&mut boxed, &cfg);
    // Session 0 (scaled mean 0.9) + session 1 (0.6) overload the server:
    // someone's backlog reaches far thresholds often.
    let heavy = rep.sessions[0].backlog.tail_at(2) + rep.sessions[1].backlog.tail_at(2);
    assert!(heavy > 0.0, "overload must build large backlogs");
    // And the analysis refuses: Σρ >= 1.
    assert!(Theorem7::new(
        vec![
            EbbProcess::new(0.9, 1.0, 1.0),
            EbbProcess::new(0.6, 1.0, 1.0)
        ],
        GpsAssignment::rpps(&rhos, 1.0),
        TimeModel::Discrete,
    )
    .is_none());
}
