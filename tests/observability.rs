//! End-to-end checks of the observability surfaces added on top of the
//! campaign engine: the Prometheus exposition must be byte-identical at
//! any worker count (it is a pure function of the metrics snapshot, and
//! the snapshot is worker-count-invariant), and the online bound monitor
//! must fire on a config that violates its curves while staying silent
//! on the paper's own validated configuration.

use gps_obs::metrics::Registry;
use gps_obs::monitor::{BoundCurve, BoundMonitor, SessionCurves};
use gps_obs::to_prometheus_text;
use gps_qos::prelude::*;
use gps_sim::runner::{
    merge_single_node_reports, monitor_single_node_fold, record_single_node_metrics,
    run_single_node_campaign_monitored_threads, run_single_node_campaign_threads,
};
use gps_sources::SlotSource;

fn paper_config(seed: u64) -> SingleNodeRunConfig {
    SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 2_000,
        measure: 50_000,
        seed,
        backlog_grid: (0..40).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..60).map(|i| i as f64).collect(),
    }
}

fn make_sources() -> Vec<Box<dyn SlotSource>> {
    OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect()
}

#[test]
fn prometheus_exposition_is_thread_count_invariant() {
    let base = paper_config(0x0B5);
    let serial = run_single_node_campaign_threads(1, &base, 4, |_r| make_sources());
    let parallel = run_single_node_campaign_threads(4, &base, 4, |_r| make_sources());

    let render = |reports: &[gps_sim::runner::SingleNodeRunReport]| {
        let reg = Registry::new();
        for r in reports {
            record_single_node_metrics(&reg, r);
        }
        to_prometheus_text(&reg.snapshot())
    };
    let a = render(&serial);
    let b = render(&parallel);
    assert!(!a.is_empty() && a.contains("# TYPE sim_measured_slots_total counter"));
    assert_eq!(a, b, "exposition must not depend on worker count");
}

#[test]
fn monitor_fires_on_forced_violation_fixture() {
    // Curves far below the true tails: every queueing session violates.
    let tight = BoundMonitor::new(vec![
        SessionCurves {
            backlog: Some(BoundCurve::new(1e-8, 5.0)),
            delay: Some(BoundCurve::new(1e-8, 5.0)),
            delay_shift: 0.0,
        };
        4
    ]);
    let base = paper_config(0xF1);
    let reports =
        run_single_node_campaign_monitored_threads(2, &base, 2, |_r| make_sources(), Some(&tight));

    // The campaign path records into the global registry.
    let snap = gps_obs::metrics().snapshot();
    let fired = snap
        .counters
        .iter()
        .find(|(name, _)| name == "obs.bound_violations")
        .map(|(_, n)| *n)
        .unwrap_or(0);
    assert!(fired > 0, "tight curves must raise obs.bound_violations");

    // And the per-fold helper agrees on a fresh registry.
    let merged = merge_single_node_reports(&reports);
    let reg = Registry::new();
    assert!(monitor_single_node_fold(&tight, &reg, &merged, 0) > 0);
}

#[test]
fn monitor_silent_on_paper_theorem10_configuration() {
    // The Theorem-10 curves of the paper's Table-1/RPPS scenario: the
    // same dominance property `bounds_vs_simulation.rs` asserts, checked
    // through the monitor path — it must record nothing.
    let sources = OnOffSource::paper_table1();
    let rhos = [0.2, 0.25, 0.2, 0.25];
    let assignment = GpsAssignment::rpps(&rhos, 1.0);
    let curves: Vec<SessionCurves> = (0..4)
        .map(|i| {
            let sess = Lnt94Characterization::characterize(
                sources[i].as_markov(),
                rhos[i],
                PrefactorKind::Lnt94,
            )
            .unwrap()
            .ebb;
            let g = assignment.guaranteed_rate(i);
            let (qb, db) = theorem10(sess, g, TimeModel::Discrete);
            SessionCurves {
                backlog: Some(BoundCurve::new(qb.prefactor, qb.decay)),
                delay: Some(BoundCurve::new(db.prefactor, db.decay)),
                delay_shift: 0.0,
            }
        })
        .collect();
    let monitor = BoundMonitor::new(curves);

    let base = paper_config(7);
    let reports = run_single_node_campaign_threads(2, &base, 4, |_r| make_sources());

    // Check every prefix fold the way the monitored campaign does.
    let reg = Registry::new();
    let mut total = 0;
    for fold in 0..reports.len() {
        let merged = merge_single_node_reports(&reports[..=fold]);
        total += monitor_single_node_fold(&monitor, &reg, &merged, fold as u64);
    }
    assert_eq!(total, 0, "paper bounds must never trip the monitor");
    assert!(
        reg.snapshot().counters.is_empty(),
        "no violation counters on the paper configuration"
    );
}
