//! End-to-end guarantees for the distributed orchestration layer
//! (`gps_sim::orchestrate`): a campaign spread over any number of
//! workers — through abandoned leases, duplicate deliveries, worker
//! replacement, coordinator restarts, and the real HTTP transport with
//! 503 backpressure — must produce CSV rows and metrics **byte-identical**
//! to a straight-through single-process supervised run.
//!
//! These are the integration-level counterparts of the unit tests in
//! `gps_sim::orchestrate`: they exercise the full pipeline the
//! `campaignd` / `campaign-worker` binaries run, minus process
//! boundaries (plus one case over a real socket).

use gps_obs::metrics::Registry;
use gps_obs::{Exporter, HttpRequest, RequestHandler, RouteResponse};
use gps_qos::prelude::*;
use gps_sim::orchestrate::{
    run_worker, CampaignSpec, CompleteReply, Coordinator, CoordinatorConfig, HttpTransport,
    LeaseReply, LocalTransport, SubmitReply, WorkerOptions, WorkerScenario, KIND_SINGLE_NODE,
};
use gps_sim::runner::{
    merge_single_node_reports, record_single_node_metrics, run_single_node_core,
    SingleNodeRunReport,
};
use gps_sim::supervise::{
    checkpoint_line, fingerprint_single_node, run_supervised_single_node_campaign,
    single_node_report_to_json, Supervisor,
};
use gps_sources::SlotSource;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const REPLICATIONS: u64 = 6;
const SHARD_SIZE: u64 = 2;
const SCENARIO: &str = "itest";

fn config() -> SingleNodeRunConfig {
    SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 500,
        measure: 3_000,
        seed: 0xD157,
        backlog_grid: (0..60).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..60).map(|i| i as f64).collect(),
    }
}

fn make_sources() -> Vec<Box<dyn SlotSource>> {
    OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect()
}

fn resolver(name: &str) -> Option<WorkerScenario> {
    (name == SCENARIO).then(|| WorkerScenario {
        cfg: config(),
        make_sources: Arc::new(|_r| make_sources()),
    })
}

fn spec() -> CampaignSpec {
    CampaignSpec {
        scenario: SCENARIO.to_string(),
        cfg: config(),
        replications: REPLICATIONS,
        shard_size: SHARD_SIZE,
    }
}

fn coordinator_config() -> CoordinatorConfig {
    CoordinatorConfig {
        // Patient: happy-path tests must never expire a live worker's
        // lease (the twitchy-expiry tests override this downward).
        lease_patience: 10_000,
        max_inflight: 8,
        journal: None,
        resume: false,
        durable: false,
    }
}

fn worker_opts(id: &str) -> WorkerOptions {
    WorkerOptions {
        worker_id: id.to_string(),
        threads: 1,
        poll: Duration::from_millis(1),
        ..WorkerOptions::default()
    }
}

/// CSV rows exactly as the experiment binaries format them (`{:.10e}`
/// cells), so equality here means byte-identical output files.
fn csv_rows(report: &SingleNodeRunReport) -> Vec<String> {
    let mut rows = Vec::new();
    for (i, s) in report.sessions.iter().enumerate() {
        for (x, p) in s.backlog.series() {
            rows.push(format!("{i},0,{x:.10e},{p:.10e}"));
        }
        for (x, p) in s.delay.series() {
            rows.push(format!("{i},1,{x:.10e},{p:.10e}"));
        }
        rows.push(format!("{i},tput,{:.10e}", s.throughput));
    }
    rows
}

fn metrics_json(report: &SingleNodeRunReport) -> String {
    let reg = Registry::new();
    record_single_node_metrics(&reg, report);
    reg.snapshot().to_json_without_spans()
}

/// The canonical single-process result every distributed variant must
/// reproduce byte-for-byte.
fn straight_through() -> SingleNodeRunReport {
    let outcome = run_supervised_single_node_campaign(
        &config(),
        REPLICATIONS,
        |_r| make_sources(),
        &Supervisor::new(),
        None,
    )
    .expect("straight-through campaign");
    assert_eq!(outcome.completed().len(), REPLICATIONS as usize);
    merge_single_node_reports(&outcome.completed())
}

/// One precomputed checkpoint line for replication `r`, as a worker
/// would stream it.
fn line_for(r: u64) -> String {
    let cfg = config();
    let mut cfg_r = cfg.clone();
    cfg_r.seed = cfg.seed.wrapping_add(r);
    let mut sources = make_sources();
    let report = run_single_node_core(&mut sources, &cfg_r);
    checkpoint_line(
        KIND_SINGLE_NODE,
        fingerprint_single_node(&cfg),
        cfg.seed,
        r,
        &single_node_report_to_json(&report),
    )
}

fn assert_identical(tag: &str, expected: &SingleNodeRunReport, got: &SingleNodeRunReport) {
    assert_eq!(csv_rows(expected), csv_rows(got), "{tag}: CSV rows differ");
    assert_eq!(
        metrics_json(expected),
        metrics_json(got),
        "{tag}: metrics JSON differs"
    );
}

fn run_local_workers(coordinator: &Arc<Mutex<Coordinator>>, n: usize) -> Vec<u64> {
    let handles: Vec<_> = (0..n)
        .map(|w| {
            let transport = LocalTransport::new(Arc::clone(coordinator));
            std::thread::spawn(move || {
                run_worker(transport, &worker_opts(&format!("w{w}")), resolver).expect("worker")
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("worker thread").replications_run)
        .collect()
}

#[test]
fn distributed_runs_match_straight_through_at_one_and_four_workers() {
    let expected = straight_through();
    for workers in [1usize, 4] {
        let coordinator = Arc::new(Mutex::new(
            Coordinator::new(spec(), &coordinator_config()).expect("coordinator"),
        ));
        let ran = run_local_workers(&coordinator, workers);
        assert_eq!(
            ran.iter().sum::<u64>(),
            REPLICATIONS,
            "{workers} workers: every replication computed exactly once"
        );
        let c = coordinator.lock().unwrap();
        assert!(c.is_done());
        assert_identical(
            &format!("{workers} workers"),
            &expected,
            &c.merged().expect("merged"),
        );
    }
}

#[test]
fn abandoned_lease_is_taken_over_and_output_identical() {
    let expected = straight_through();
    let coordinator = Arc::new(Mutex::new(
        Coordinator::new(
            spec(),
            &CoordinatorConfig {
                lease_patience: 3,
                ..coordinator_config()
            },
        )
        .expect("coordinator"),
    ));
    // A ghost worker leases the first shard and is never heard from
    // again — the kill -9 case, minus the process.
    let ghost = match coordinator.lock().unwrap().lease("ghost") {
        LeaseReply::Shard { shard, token, .. } => (shard, token),
        other => panic!("ghost expected a shard, got {other:?}"),
    };
    let transport = LocalTransport::new(Arc::clone(&coordinator));
    let summary = run_worker(transport, &worker_opts("rescuer"), resolver).expect("rescuer");
    assert!(
        summary.takeovers >= 1,
        "the rescuer must take over the ghost's expired lease"
    );
    assert_eq!(summary.replications_run, REPLICATIONS);
    let mut c = coordinator.lock().unwrap();
    assert!(c.is_done());
    assert!(c.stats().expired >= 1);
    // The ghost coming back to life cannot double-complete its shard.
    assert_eq!(c.complete(ghost.0, ghost.1), CompleteReply::Complete);
    assert_identical("takeover", &expected, &c.merged().expect("merged"));
}

#[test]
fn coordinator_restart_resumes_journal_and_output_identical() {
    let expected = straight_through();
    let journal = std::env::temp_dir().join(format!(
        "gps_distributed_it_restart_{}.ndjson",
        std::process::id()
    ));
    std::fs::remove_file(&journal).ok();
    let journaled = |resume: bool| CoordinatorConfig {
        journal: Some(PathBuf::from(&journal)),
        resume,
        durable: true,
        ..coordinator_config()
    };
    // First incarnation: one shard is leased, streamed, and sealed;
    // then the coordinator "crashes" (is dropped).
    {
        let mut c = Coordinator::new(spec(), &journaled(false)).expect("coordinator");
        let (shard, token, start, end) = match c.lease("w0") {
            LeaseReply::Shard {
                shard,
                token,
                start,
                end,
                ..
            } => (shard, token, start, end),
            other => panic!("expected a shard, got {other:?}"),
        };
        for r in start..end {
            assert_eq!(c.submit_line(&line_for(r)), SubmitReply::Accepted);
        }
        assert_eq!(c.complete(shard, token), CompleteReply::Complete);
    }
    // Second incarnation resumes the journal: the sealed shard is born
    // done, nothing already computed is recomputed.
    let coordinator = Arc::new(Mutex::new(
        Coordinator::new(spec(), &journaled(true)).expect("resumed coordinator"),
    ));
    assert_eq!(coordinator.lock().unwrap().stats().restored, SHARD_SIZE);
    let ran = run_local_workers(&coordinator, 2);
    assert_eq!(
        ran.iter().sum::<u64>(),
        REPLICATIONS - SHARD_SIZE,
        "restored replications must not be recomputed"
    );
    let c = coordinator.lock().unwrap();
    assert!(c.is_done());
    assert_identical("restart", &expected, &c.merged().expect("merged"));
    std::fs::remove_file(&journal).ok();
}

#[test]
fn duplicate_shard_delivery_is_idempotent() {
    let expected = straight_through();
    let mut c = Coordinator::new(
        spec(),
        &CoordinatorConfig {
            lease_patience: 3,
            ..coordinator_config()
        },
    )
    .expect("coordinator");
    let lines: Vec<String> = (0..REPLICATIONS).map(line_for).collect();
    let (shard, stale_token) = match c.lease("w0") {
        LeaseReply::Shard { shard, token, .. } => (shard, token),
        other => panic!("expected a shard, got {other:?}"),
    };
    // w0 delivers its shard but dies before completing; w1 drains the
    // remaining shards, and once w0's lease goes stale enough, takes it
    // over too — redelivering every one of its lines.
    for line in &lines[..SHARD_SIZE as usize] {
        assert_eq!(c.submit_line(line), SubmitReply::Accepted);
    }
    let mut others = Vec::new();
    let mut takeover = None;
    for _ in 0..50 {
        match c.lease("w1") {
            LeaseReply::Shard {
                shard,
                token,
                takeover: true,
                ..
            } => {
                takeover = Some((shard, token));
                break;
            }
            LeaseReply::Shard { shard, token, .. } => others.push((shard, token)),
            LeaseReply::Wait => {}
            LeaseReply::Done => panic!("campaign cannot be done yet"),
        }
    }
    let (reshard, token) = takeover.expect("w0's lease never expired");
    assert_eq!(reshard, shard);
    for line in &lines[..SHARD_SIZE as usize] {
        assert_eq!(c.submit_line(line), SubmitReply::Duplicate);
    }
    assert_eq!(c.complete(shard, token), CompleteReply::Complete);
    assert_eq!(c.complete(shard, stale_token), CompleteReply::Complete);
    // w1's own shards arrive normally (plus one stray duplicate of an
    // already-accepted line).
    for line in &lines[SHARD_SIZE as usize..] {
        assert_eq!(c.submit_line(line), SubmitReply::Accepted);
    }
    assert_eq!(c.submit_line(&lines[0]), SubmitReply::Duplicate);
    for (s, t) in others {
        assert_eq!(c.complete(s, t), CompleteReply::Complete);
    }
    assert!(c.is_done());
    let stats = c.stats();
    assert_eq!(stats.submitted, REPLICATIONS);
    assert_eq!(stats.duplicates, SHARD_SIZE + 1);
    assert_identical("duplicates", &expected, &c.merged().expect("merged"));
}

#[test]
fn http_transport_completes_campaign_through_backpressure() {
    let expected = straight_through();
    let coordinator = Arc::new(Mutex::new(
        Coordinator::new(spec(), &coordinator_config()).expect("coordinator"),
    ));
    // A minimal campaignd: the orchestration routes behind the real
    // exporter, with the first few requests shed as 503 to exercise the
    // transport's bounded backpressure loop.
    let handler_coordinator = Arc::clone(&coordinator);
    let shed_budget = Arc::new(AtomicUsize::new(3));
    let handler: RequestHandler = Arc::new(move |req: &HttpRequest| {
        if shed_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
        {
            return Some(RouteResponse::json(503, "{\"error\":\"busy\"}"));
        }
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (req.path.as_str(), ""),
        };
        let param = |key: &str| {
            query
                .split('&')
                .filter_map(|kv| kv.split_once('='))
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        };
        let mut c = handler_coordinator.lock().unwrap();
        match (req.method.as_str(), path) {
            ("GET", "/shard") => Some(RouteResponse::json(
                200,
                c.lease(&param("worker").unwrap_or_default()).to_json(),
            )),
            ("POST", "/result") => {
                let reply = c.submit_line(req.body.trim_end());
                let status = match reply {
                    SubmitReply::Rejected(_) => 400,
                    _ => 200,
                };
                Some(RouteResponse::json(status, reply.to_json()))
            }
            ("POST", "/complete") => {
                let shard = param("shard").and_then(|v| v.parse().ok()).unwrap();
                let token = param("token").and_then(|v| v.parse().ok()).unwrap();
                let reply = c.complete(shard, token);
                let status = match reply {
                    CompleteReply::Incomplete { .. } => 409,
                    _ => 200,
                };
                Some(RouteResponse::json(status, reply.to_json()))
            }
            _ => None,
        }
    });
    let server =
        Exporter::serve_requests("127.0.0.1:0", Registry::new(), handler, None).expect("exporter");
    let addr = server.local_addr();
    let handles: Vec<_> = (0..2)
        .map(|w| {
            std::thread::spawn(move || {
                let mut transport = HttpTransport::connect(addr).expect("connect");
                transport.backpressure_step = Duration::from_millis(1);
                run_worker(transport, &worker_opts(&format!("http-w{w}")), resolver)
                    .expect("http worker")
            })
        })
        .collect();
    let total: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread").replications_run)
        .sum();
    assert_eq!(total, REPLICATIONS);
    let c = coordinator.lock().unwrap();
    assert!(c.is_done());
    assert_identical("http", &expected, &c.merged().expect("merged"));
    drop(c);
    server.shutdown();
}
