//! End-to-end flight-recorder guarantees at the campaign level.
//!
//! Counts mode participates in the repo's determinism contract: the
//! exported digest is a pure function of the workload, byte-identical
//! across every `(threads, chunk)` scheduling choice. Timing mode makes
//! no byte-level promise (timestamps are wall clock), but its Chrome
//! trace must always be *well-formed*: parseable by the in-tree JSON
//! parser, with properly nested begin/end events on every lane.
//!
//! The trace mode is process-global, so the tests serialize on a lock.

use gps_sim::runner::{run_single_node_campaign_chunked_threads, SingleNodeRunConfig};
use gps_sources::{OnOffSource, SlotSource};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn config() -> SingleNodeRunConfig {
    SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 50,
        measure: 1_000,
        seed: 20260807,
        backlog_grid: (0..20).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..20).map(|i| i as f64).collect(),
    }
}

fn sources(_: u64) -> Vec<Box<dyn SlotSource>> {
    OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect()
}

/// The counts-only digest of a whole campaign is byte-identical across
/// thread counts and chunk sizes — the flight-recorder extension of the
/// campaign determinism contract.
#[test]
fn counts_digest_is_schedule_invariant_for_campaigns() {
    let _g = locked();
    gps_obs::trace::configure(gps_obs::TraceMode::Counts);
    let cfg = config();
    let mut exports = Vec::new();
    for (threads, chunk) in [(1usize, Some(1usize)), (1, None), (4, Some(1)), (4, None)] {
        gps_obs::trace::reset();
        let reports = run_single_node_campaign_chunked_threads(threads, chunk, &cfg, 6, sources);
        assert_eq!(reports.len(), 6);
        exports.push(gps_obs::trace::export_json("flight_recorder").expect("counts export"));
    }
    gps_obs::trace::configure(gps_obs::TraceMode::Off);
    gps_obs::trace::reset();
    for (i, e) in exports.iter().enumerate().skip(1) {
        assert_eq!(
            &exports[0], e,
            "counts digest diverged at schedule variant {i}"
        );
    }
    // The digest really covers the campaign: 6 replications flowed
    // through worker chunks.
    let doc = gps_obs::json::parse(&exports[0]).expect("digest parses");
    let events = match doc.get("events") {
        Some(gps_obs::json::Json::Arr(evs)) => evs.clone(),
        other => panic!("no events array: {other:?}"),
    };
    let items_of = |kind: &str| {
        events
            .iter()
            .find(|e| e.get("kind").and_then(|k| k.as_str()) == Some(kind))
            .and_then(|e| e.get("items"))
            .and_then(|v| v.as_u64())
    };
    assert_eq!(items_of("worker_chunk"), Some(6));
}

/// A timing-mode campaign exports a well-formed Chrome trace: every
/// lane's begin/end events nest properly (depth never goes negative and
/// returns to zero), and the chunks landed on worker lanes.
#[test]
fn timing_trace_nests_properly_per_lane() {
    let _g = locked();
    gps_obs::trace::configure(gps_obs::TraceMode::Timing);
    gps_obs::trace::reset();
    let cfg = config();
    let reports = run_single_node_campaign_chunked_threads(4, None, &cfg, 8, sources);
    assert_eq!(reports.len(), 8);
    let json = gps_obs::trace::export_json("flight_recorder").expect("timing export");
    gps_obs::trace::configure(gps_obs::TraceMode::Off);
    gps_obs::trace::reset();

    let doc = gps_obs::json::parse(&json).expect("chrome trace parses");
    let events = match doc.get("traceEvents") {
        Some(gps_obs::json::Json::Arr(evs)) => evs.clone(),
        other => panic!("no traceEvents array: {other:?}"),
    };
    assert_eq!(
        doc.get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(|v| v.as_u64()),
        Some(0),
        "tiny campaign must not overflow the ring"
    );

    // Events are exported in timestamp order; walk each lane's depth.
    let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
    let mut worker_chunks = 0u64;
    for e in &events {
        let ph = e.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let tid = e.get("tid").and_then(|t| t.as_u64()).unwrap_or(0);
        match ph {
            "B" => {
                *depth.entry(tid).or_insert(0) += 1;
                if e.get("cat").and_then(|c| c.as_str()) == Some("worker_chunk") {
                    assert!(tid >= 1, "chunks run on worker lanes, got tid {tid}");
                    worker_chunks += 1;
                }
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "unbalanced end event on lane {tid}");
            }
            _ => {}
        }
    }
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "lane {tid} left {d} unclosed begin events");
    }
    assert!(
        worker_chunks >= 1,
        "expected at least one chunk slice on a worker lane"
    );
    // The decoder the dashboard uses accepts the same document.
    let timeline = gps_obs::report::timeline_from_chrome_trace(&doc).expect("timeline decodes");
    assert_eq!(timeline.campaign, "flight_recorder");
    assert!(timeline.lanes.iter().any(|l| l.name.starts_with("worker-")));
}
