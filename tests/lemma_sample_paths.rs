//! Sample-path verification of the paper's core lemmas on simulated GPS
//! trajectories — the deterministic heart of the whole analysis, checked
//! pointwise on random runs.
//!
//! * **Lemma 1**: for any feasible ordering w.r.t. dedicated rates
//!   `r_i = ρ_i + ε_i`, at every time `t`:
//!   `Σ_{j<=i} Q_j(t) <= Σ_{j<=i} δ_j(t)` — the real GPS backlogs are
//!   dominated, prefix by prefix, by the fictitious dedicated-server
//!   backlogs.
//! * **Lemma 3**: individually,
//!   `Q_i(t) <= δ_i(t) + ψ_i Σ_{j before i} δ_j(t)`.
//!
//! The δ's are computed by the Lindley recursion at the dedicated rates
//! on the *same* arrival sample paths the GPS simulator consumes.

use gps_qos::prelude::*;

struct Run {
    /// Per-slot arrivals, [slot][session].
    arrivals: Vec<Vec<f64>>,
}

fn random_run(seed: u64, slots: usize, rhos: &[f64]) -> Run {
    // On-off-ish arrivals with the requested mean rates, via deterministic
    // xorshift-style pseudo-randomness.
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut rnd = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let n = rhos.len();
    let mut arrivals = Vec::with_capacity(slots);
    let mut on = vec![false; n];
    for _ in 0..slots {
        let mut row = Vec::with_capacity(n);
        for i in 0..n {
            // Flip on/off with prob .3; while on, emit 2.5·ρ (mean ≈ ρ
            // when on ~40% of the time).
            if rnd() < 0.3 {
                on[i] = !on[i];
            }
            row.push(if on[i] {
                2.5 * rhos[i] * rnd() * 2.0
            } else {
                0.0
            });
        }
        arrivals.push(row);
    }
    Run { arrivals }
}

/// Runs the slotted GPS and the dedicated-rate Lindley recursions side by
/// side, checking Lemmas 1 and 3 at every slot.
fn check_lemmas(seed: u64, phis: Vec<f64>, rhos: Vec<f64>) {
    let n = phis.len();
    let assignment = GpsAssignment::unit_rate(phis.clone());
    let rates = RateAllocation::Uniform
        .dedicated_rates(&rhos, &phis, 1.0, 1.0)
        .expect("stable");
    let ordering =
        gps_qos::gps::ordering::find_feasible_ordering(&rates, &assignment).expect("feasible");

    let run = random_run(seed, 4000, &rhos);
    let mut gps = SlottedGps::new(phis.clone(), 1.0);
    let mut deltas = vec![0.0_f64; n];

    for arr in &run.arrivals {
        gps.step(arr);
        for i in 0..n {
            deltas[i] = (deltas[i] + arr[i] - rates[i]).max(0.0);
        }

        // Lemma 1: prefix sums along the feasible ordering.
        let mut q_prefix = 0.0;
        let mut d_prefix = 0.0;
        for (pos, &i) in ordering.iter().enumerate() {
            q_prefix += gps.backlog(i);
            d_prefix += deltas[i];
            assert!(
                q_prefix <= d_prefix + 1e-7,
                "Lemma 1 violated at prefix {pos} (seed {seed}): {q_prefix} > {d_prefix}"
            );
        }

        // Lemma 3: per-session bound.
        for (pos, &i) in ordering.iter().enumerate() {
            let tail: Vec<usize> = ordering[pos..].to_vec();
            let psi = assignment.share_within(i, &tail);
            let lower: f64 = ordering[..pos].iter().map(|&j| deltas[j]).sum();
            let bound = deltas[i] + psi * lower;
            assert!(
                gps.backlog(i) <= bound + 1e-7,
                "Lemma 3 violated for session {i} (seed {seed}): {} > {bound}",
                gps.backlog(i)
            );
        }
    }
}

#[test]
fn lemma1_and_3_hold_on_random_paths_equal_weights() {
    for seed in 0..8 {
        check_lemmas(seed, vec![1.0, 1.0, 1.0], vec![0.25, 0.2, 0.3]);
    }
}

#[test]
fn lemma1_and_3_hold_on_random_paths_skewed_weights() {
    for seed in 100..108 {
        check_lemmas(seed, vec![3.0, 0.5, 1.0, 0.2], vec![0.1, 0.2, 0.25, 0.05]);
    }
}

#[test]
fn lemma1_and_3_hold_under_heavy_load() {
    // Σρ = 0.93: long busy periods stress the prefix inequality.
    for seed in 200..206 {
        check_lemmas(seed, vec![1.0, 2.0], vec![0.45, 0.48]);
    }
}

/// The marked-traffic reading: δ_i computed by the Lindley recursion is
/// exactly the `MarkedTrafficMeter`'s backlog on the same path.
#[test]
fn delta_equals_marked_meter_on_gps_inputs() {
    let rhos = [0.3, 0.25];
    let run = random_run(42, 2000, &rhos);
    let rate = 0.4;
    let mut meter = MarkedTrafficMeter::new(rate);
    let mut delta = 0.0_f64;
    for arr in &run.arrivals {
        meter.offer(arr[0]);
        delta = (delta + arr[0] - rate).max(0.0);
        assert!((meter.delta() - delta).abs() < 1e-9);
    }
}
