//! End-to-end determinism of the measurement campaigns: the entire
//! simulation pipeline (SeedSequence → per-source RNG streams → slotted
//! GPS → CCDF/moment accumulation) must be a pure function of the master
//! seed. Two runs with the same seed produce bit-identical
//! `SessionReport`s; a different seed produces different measurements.

use gps_qos::prelude::*;
use gps_sim::runner::{SessionReport, SingleNodeRunReport};
use gps_sources::SlotSource;

fn config(seed: u64) -> SingleNodeRunConfig {
    SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 1_000,
        measure: 30_000,
        seed,
        backlog_grid: (0..60).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..60).map(|i| i as f64).collect(),
    }
}

fn campaign(seed: u64) -> SingleNodeRunReport {
    let mut sources: Vec<Box<dyn SlotSource>> = OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect();
    run_single_node(&mut sources, &config(seed))
}

/// Bit-exact equality for f64 series (== would accept -0.0 vs 0.0 and
/// reject NaN; reports must match to the bit).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn assert_session_reports_identical(a: &SessionReport, b: &SessionReport, i: usize) {
    let (sa, sb) = (a.backlog.series(), b.backlog.series());
    assert_eq!(sa.len(), sb.len());
    for (&(xa, pa), &(xb, pb)) in sa.iter().zip(&sb) {
        assert!(
            bits_eq(xa, xb) && bits_eq(pa, pb),
            "session {i}: backlog series diverge at x={xa}"
        );
    }
    let (da, db) = (a.delay.series(), b.delay.series());
    assert_eq!(da.len(), db.len());
    for (&(xa, pa), &(xb, pb)) in da.iter().zip(&db) {
        assert!(
            bits_eq(xa, xb) && bits_eq(pa, pb),
            "session {i}: delay series diverge at x={xa}"
        );
    }
    assert_eq!(a.backlog.len(), b.backlog.len());
    assert_eq!(a.delay.len(), b.delay.len());
    assert_eq!(a.backlog_moments.count(), b.backlog_moments.count());
    assert!(bits_eq(a.backlog_moments.mean(), b.backlog_moments.mean()));
    assert!(bits_eq(
        a.backlog_moments.sample_variance(),
        b.backlog_moments.sample_variance()
    ));
    assert!(bits_eq(a.backlog_moments.min(), b.backlog_moments.min()));
    assert!(bits_eq(a.backlog_moments.max(), b.backlog_moments.max()));
    assert!(
        bits_eq(a.throughput, b.throughput),
        "session {i} throughput"
    );
}

#[test]
fn same_master_seed_is_bit_identical() {
    let a = campaign(0xD5A1_94C3);
    let b = campaign(0xD5A1_94C3);
    assert_eq!(a.measured_slots, b.measured_slots);
    assert_eq!(a.sessions.len(), b.sessions.len());
    for (i, (ra, rb)) in a.sessions.iter().zip(&b.sessions).enumerate() {
        assert_session_reports_identical(ra, rb, i);
    }
}

#[test]
fn different_master_seeds_differ() {
    let a = campaign(1);
    let c = campaign(2);
    // At 30k slots of four bursty sources, identical empirical CCDFs from
    // independent streams are (astronomically) improbable: some session's
    // backlog or throughput must differ.
    let any_diff = a.sessions.iter().zip(&c.sessions).any(|(ra, rc)| {
        ra.backlog.series() != rc.backlog.series()
            || ra.delay.series() != rc.delay.series()
            || !bits_eq(ra.throughput, rc.throughput)
    });
    assert!(any_diff, "different seeds produced identical campaigns");
}
