//! End-to-end determinism of the measurement campaigns: the entire
//! simulation pipeline (SeedSequence → per-source RNG streams → slotted
//! GPS → CCDF/moment accumulation) must be a pure function of the master
//! seed. Two runs with the same seed produce bit-identical
//! `SessionReport`s; a different seed produces different measurements.

use gps_qos::prelude::*;
use gps_sim::runner::{SessionReport, SingleNodeRunReport};
use gps_sources::SlotSource;

fn config(seed: u64) -> SingleNodeRunConfig {
    SingleNodeRunConfig {
        phis: vec![0.2, 0.25, 0.2, 0.25],
        capacity: 1.0,
        warmup: 1_000,
        measure: 30_000,
        seed,
        backlog_grid: (0..60).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..60).map(|i| i as f64).collect(),
    }
}

fn campaign(seed: u64) -> SingleNodeRunReport {
    let mut sources: Vec<Box<dyn SlotSource>> = OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect();
    run_single_node(&mut sources, &config(seed))
}

/// Bit-exact equality for f64 series (== would accept -0.0 vs 0.0 and
/// reject NaN; reports must match to the bit).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn assert_session_reports_identical(a: &SessionReport, b: &SessionReport, i: usize) {
    let (sa, sb) = (a.backlog.series(), b.backlog.series());
    assert_eq!(sa.len(), sb.len());
    for (&(xa, pa), &(xb, pb)) in sa.iter().zip(&sb) {
        assert!(
            bits_eq(xa, xb) && bits_eq(pa, pb),
            "session {i}: backlog series diverge at x={xa}"
        );
    }
    let (da, db) = (a.delay.series(), b.delay.series());
    assert_eq!(da.len(), db.len());
    for (&(xa, pa), &(xb, pb)) in da.iter().zip(&db) {
        assert!(
            bits_eq(xa, xb) && bits_eq(pa, pb),
            "session {i}: delay series diverge at x={xa}"
        );
    }
    assert_eq!(a.backlog.len(), b.backlog.len());
    assert_eq!(a.delay.len(), b.delay.len());
    assert_eq!(a.backlog_moments.count(), b.backlog_moments.count());
    assert!(bits_eq(a.backlog_moments.mean(), b.backlog_moments.mean()));
    assert!(bits_eq(
        a.backlog_moments.sample_variance(),
        b.backlog_moments.sample_variance()
    ));
    assert!(bits_eq(a.backlog_moments.min(), b.backlog_moments.min()));
    assert!(bits_eq(a.backlog_moments.max(), b.backlog_moments.max()));
    assert!(
        bits_eq(a.throughput, b.throughput),
        "session {i} throughput"
    );
}

#[test]
fn same_master_seed_is_bit_identical() {
    let a = campaign(0xD5A1_94C3);
    let b = campaign(0xD5A1_94C3);
    assert_eq!(a.measured_slots, b.measured_slots);
    assert_eq!(a.sessions.len(), b.sessions.len());
    for (i, (ra, rb)) in a.sessions.iter().zip(&b.sessions).enumerate() {
        assert_session_reports_identical(ra, rb, i);
    }
}

// ---------------------------------------------------------------------
// Campaign-level determinism: the parallel campaign engine must produce
// the same bytes as the serial path at any worker count. These tests pin
// the explicit-thread variants (rather than GPS_PAR_THREADS) so they
// stay race-free under the multithreaded test runner.

use gps_obs::metrics::Registry;
use gps_sim::runner::{
    merge_network_reports, merge_single_node_reports, record_network_metrics,
    record_single_node_metrics, run_network_campaign_threads, run_single_node_campaign_threads,
    NetworkRunReport,
};

fn make_sources() -> Vec<Box<dyn SlotSource>> {
    OnOffSource::paper_table1()
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn SlotSource>)
        .collect()
}

/// Formats a merged report exactly the way the experiment binaries write
/// CSV rows (`{:.10e}` cells), so equality here means byte-identical
/// output files.
fn single_node_csv_rows(report: &SingleNodeRunReport) -> Vec<String> {
    let mut rows = Vec::new();
    for (i, s) in report.sessions.iter().enumerate() {
        for (x, p) in s.backlog.series() {
            rows.push(format!("{i},0,{x:.10e},{p:.10e}"));
        }
        for (x, p) in s.delay.series() {
            rows.push(format!("{i},1,{x:.10e},{p:.10e}"));
        }
        rows.push(format!("{i},tput,{:.10e}", s.throughput));
    }
    rows
}

fn network_csv_rows(report: &NetworkRunReport) -> Vec<String> {
    let mut rows = Vec::new();
    for i in 0..report.backlog.len() {
        for (x, p) in report.backlog[i].series() {
            rows.push(format!("{i},0,{x:.10e},{p:.10e}"));
        }
        for (x, p) in report.delay[i].series() {
            rows.push(format!("{i},1,{x:.10e},{p:.10e}"));
        }
    }
    rows
}

#[test]
fn parallel_single_node_campaign_matches_serial_byte_for_byte() {
    let base = {
        let mut c = config(0xCAFE);
        c.warmup = 500;
        c.measure = 8_000;
        c
    };
    let serial = run_single_node_campaign_threads(1, &base, 6, |_r| make_sources());
    let parallel = run_single_node_campaign_threads(4, &base, 6, |_r| make_sources());

    // Byte-identical CSV rows from the merged reports.
    let ms = merge_single_node_reports(&serial);
    let mp = merge_single_node_reports(&parallel);
    assert_eq!(single_node_csv_rows(&ms), single_node_csv_rows(&mp));

    // Identical metrics snapshots when folded in replication order into
    // fresh registries (span timings are nondeterministic and excluded).
    let reg_serial = Registry::new();
    for r in &serial {
        record_single_node_metrics(&reg_serial, r);
    }
    let reg_parallel = Registry::new();
    for r in &parallel {
        record_single_node_metrics(&reg_parallel, r);
    }
    assert_eq!(
        reg_serial.snapshot().to_json_without_spans(),
        reg_parallel.snapshot().to_json_without_spans()
    );
}

#[test]
fn parallel_network_campaign_matches_serial_byte_for_byte() {
    let base = NetworkRunConfig {
        topology: NetworkTopology::paper_figure2([0.2, 0.25, 0.2, 0.25]),
        warmup: 500,
        measure: 6_000,
        seed: 0xF00D,
        backlog_grid: (0..40).map(|i| i as f64 * 0.5).collect(),
        delay_grid: (0..40).map(|i| i as f64).collect(),
    };
    let serial = run_network_campaign_threads(1, &base, 5, |_r| make_sources());
    let parallel = run_network_campaign_threads(3, &base, 5, |_r| make_sources());

    let ms = merge_network_reports(&serial);
    let mp = merge_network_reports(&parallel);
    assert_eq!(ms.measured_slots, mp.measured_slots);
    assert_eq!(network_csv_rows(&ms), network_csv_rows(&mp));

    let reg_serial = Registry::new();
    for r in &serial {
        record_network_metrics(&reg_serial, r);
    }
    let reg_parallel = Registry::new();
    for r in &parallel {
        record_network_metrics(&reg_parallel, r);
    }
    assert_eq!(
        reg_serial.snapshot().to_json_without_spans(),
        reg_parallel.snapshot().to_json_without_spans()
    );
}

#[test]
fn different_master_seeds_differ() {
    let a = campaign(1);
    let c = campaign(2);
    // At 30k slots of four bursty sources, identical empirical CCDFs from
    // independent streams are (astronomically) improbable: some session's
    // backlog or throughput must differ.
    let any_diff = a.sessions.iter().zip(&c.sessions).any(|(ra, rc)| {
        ra.backlog.series() != rc.backlog.series()
            || ra.delay.series() != rc.delay.series()
            || !bits_eq(ra.throughput, rc.throughput)
    });
    assert!(any_diff, "different seeds produced identical campaigns");
}
