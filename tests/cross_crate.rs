//! Cross-crate integration: pipelines that touch several subsystems at
//! once (trace fitting → bounds; packetized vs fluid; deterministic vs
//! statistical; CRST errors; admission consistency).

use gps_qos::prelude::*;

#[test]
fn trace_fitting_pipeline_yields_valid_bounds() {
    // Record a trace from an on-off source, fit an empirical E.B.B.,
    // then drive Theorem 10 with the *fitted* characterization and check
    // the resulting bound against a fresh simulation of the same source.
    let seeds = SeedSequence::new(101);
    let mut src = OnOffSource::new(0.4, 0.4, 0.4);
    let mut rng = seeds.rng("fit", 0);
    src.reset(&mut rng);
    let trace = ArrivalTrace::record(&mut src, 300_000, &mut rng);
    let fitted = trace.fit_ebb(0.25, 25).expect("excess exists");
    assert_eq!(fitted.rho, 0.25);
    assert!(fitted.alpha > 0.5 && fitted.alpha < 10.0);

    // Single queue at the RPPS guaranteed rate for 3 identical sessions.
    let g = 1.0 / 3.0;
    let (qb, _) = theorem10(fitted, g, TimeModel::Discrete);

    // Fresh realization, dedicated-rate queue = the δ process itself.
    let mut rng2 = seeds.rng("fresh", 0);
    let mut src2 = OnOffSource::new(0.4, 0.4, 0.4);
    src2.reset(&mut rng2);
    let mut delta = 0.0_f64;
    let mut exceed_2 = 0u64;
    let n = 300_000u64;
    for _ in 0..n {
        delta = (delta + src2.next_slot(&mut rng2) - g).max(0.0);
        if delta >= 2.0 {
            exceed_2 += 1;
        }
    }
    let emp = exceed_2 as f64 / n as f64;
    assert!(
        emp <= qb.tail(2.0) * 1.5 + 1e-4,
        "fitted bound {} must (roughly) dominate fresh measurement {emp}",
        qb.tail(2.0)
    );
}

#[test]
fn pgps_vs_fluid_on_shared_scenario() {
    // Run identical packet arrivals through the packetized PGPS server
    // and the fluid GPS; PG's theorem ties them together.
    let phis = vec![1.0, 1.0];
    let mut packets = Vec::new();
    let mut t = 0.0;
    for k in 0..200 {
        t += 0.3 + 0.2 * ((k * 37 % 11) as f64 / 11.0);
        packets.push(Packet {
            session: k % 2,
            size: 0.25 + 0.5 * ((k * 13 % 7) as f64 / 7.0),
            arrival: t,
        });
    }
    let l_max: f64 = packets.iter().map(|p| p.size).fold(0.0, f64::max);
    let deps = PgpsServer::new(phis.clone(), 1.0).run(&packets);

    let mut fluid = FluidGps::new(phis, 1.0);
    for p in &packets {
        fluid.arrive(p.arrival, p.session, p.size);
    }
    fluid.advance_to(t + 1e4);
    let comps = fluid.take_completions();
    let mut fluid_by_session: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for c in comps {
        fluid_by_session[c.session].push(c.completion);
    }
    let mut idx = [0usize; 2];
    for (i, p) in packets.iter().enumerate() {
        let fc = fluid_by_session[p.session][idx[p.session]];
        idx[p.session] += 1;
        assert!(
            deps[i].finish <= fc + l_max + 1e-6,
            "packet {i}: PGPS {} vs fluid {fc} + {l_max}",
            deps[i].finish
        );
    }
}

#[test]
fn deterministic_and_statistical_agree_on_structure() {
    // For LBAP-style traffic the deterministic PG bound and the
    // statistical bound built from the from_lbap embedding must order
    // consistently: the statistical tail at the deterministic worst case
    // should be small-ish but positive (the embedding is not vacuous
    // beyond σ).
    let sigma = 2.0;
    let rho = 0.2;
    let alpha = 1.5;
    let curve = AffineCurve::new(sigma, rho);
    let ebb = EbbProcess::from_lbap(sigma, rho, alpha);
    let assignment = GpsAssignment::rpps(&[rho, rho, rho], 1.0);
    let g = assignment.guaranteed_rate(0);

    let det =
        gps_qos::netcalc::pg::single_node_bounds(&[curve, curve, curve], &assignment).unwrap();
    let (qb, db) = theorem10(ebb, g, TimeModel::Discrete);
    // Deterministic worst case: Q <= σ, D <= σ/g.
    assert_eq!(det[0].backlog, sigma);
    assert!((det[0].delay - sigma / g).abs() < 1e-12);
    // The statistical bound at twice the deterministic backlog is well
    // below 1 (informative) and decreasing.
    assert!(qb.tail(2.0 * sigma) < 0.5);
    assert!(db.tail(2.0 * sigma / g) < 0.5);
}

#[test]
fn crst_error_paths() {
    // Unstable node.
    let topo = NetworkTopology::paper_figure2([0.3, 0.3, 0.3, 0.3]);
    let sessions: Vec<NetworkSession> = (0..4)
        .map(|_| NetworkSession {
            source: EbbProcess::new(0.3, 1.0, 1.0),
        })
        .collect();
    assert!(matches!(
        CrstAnalysis::new(topo, sessions, TimeModel::Discrete),
        Err(CrstError::Unstable { node: 2 })
    ));
}

#[test]
fn admission_consistent_with_direct_bound_check() {
    let s = EbbProcess::new(0.05, 1.0, 3.0);
    let target = QosTarget::new(10.0, 1e-6);
    let n = max_rpps_sessions(s, 1.0, target, TimeModel::Discrete);
    assert!(n >= 1);
    // Check the boundary decisions directly with Theorem 10.
    let g_ok = 1.0 / n as f64;
    let (_, d_ok) = theorem10(s, g_ok, TimeModel::Discrete);
    assert!(d_ok.tail(target.delay) <= target.epsilon);
    let g_bad = 1.0 / (n + 1) as f64;
    if g_bad > s.rho {
        let (_, d_bad) = theorem10(s, g_bad, TimeModel::Discrete);
        assert!(d_bad.tail(target.delay) > target.epsilon);
    }
}

#[test]
fn e2e_convolution_consistent_with_per_node_bounds() {
    // Combining k identical per-node bounds must be weaker than one node
    // but still exponentially decaying.
    let per_node = TailBound::new(2.0, 0.8);
    let one = e2e_delay(&[per_node], 30.0);
    let three = e2e_delay(&[per_node, per_node, per_node], 30.0);
    assert!(one <= three);
    assert!(three < 1e-2);
}
