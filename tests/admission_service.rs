//! Admission-control service properties: monotonicity of the admissible
//! region (in session counts, server rate, and QoS looseness) and the
//! engine's bit-identity contract — cached, warm-started, batched, and
//! from-scratch decision streams must agree byte-for-byte. `verify.sh`
//! runs this file under `GPS_PAR_THREADS` ∈ {1, 4, unset}, so the
//! batched (`admit_batch`, prefetched through the `gps_par` pool)
//! comparisons also pin schedule invariance.

use gps_qos::prelude::*;
use gps_stats::rng::{RngCore, Xoshiro256pp};

fn classes() -> Vec<ClassSpec> {
    vec![
        ClassSpec::new(
            "voice",
            EbbProcess::new(0.02, 1.0, 17.4),
            QosTarget::new(5.0, 1e-6),
        ),
        ClassSpec::new(
            "video",
            EbbProcess::new(0.08, 2.0, 6.0),
            QosTarget::new(10.0, 1e-4),
        ),
        ClassSpec::new(
            "data",
            EbbProcess::new(0.05, 4.0, 3.0),
            QosTarget::new(40.0, 1e-3),
        ),
    ]
}

fn engine(backend: CertBackend, rate: f64) -> AdmissionEngine {
    AdmissionEngine::new(classes(), rate, TimeModel::Discrete, backend).unwrap()
}

/// A deterministic admit/depart stream over `k` classes.
fn workload(n: usize, k: usize, seed: u64) -> Vec<Request> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| Request {
            class: (rng.next_u64() % k as u64) as usize,
            kind: if rng.next_u64() % 10 < 7 {
                RequestKind::Admit
            } else {
                RequestKind::Depart
            },
        })
        .collect()
}

/// Fills the engine with class-`j` sessions until the first rejection;
/// returns how many were admitted.
fn fill(e: &mut AdmissionEngine, j: usize) -> u64 {
    for admitted in 0..100_000 {
        if !e.admit(j).accepted {
            return admitted;
        }
    }
    panic!("admission never saturated");
}

#[test]
fn admission_is_monotone_in_session_counts() {
    // If a mix is admissible, every componentwise-smaller mix is too:
    // walk to the boundary, then re-check admits from decremented mixes.
    for backend in [CertBackend::Rpps, CertBackend::EffectiveBandwidth] {
        let mut e = engine(backend, 1.0);
        for req in workload(200, 3, 11) {
            e.decide(req);
        }
        let j = 0;
        fill(&mut e, j); // saturate class 0: one more class-0 admit is refused
        assert!(!e.admit(j).accepted);
        let full = e.counts().to_vec();
        for drop_class in 0..full.len() {
            if full[drop_class] == 0 {
                continue;
            }
            let mut fewer = full.clone();
            fewer[drop_class] -= 1;
            let mut smaller = engine(backend, 1.0);
            smaller.set_counts(&fewer);
            assert!(
                smaller.admit(drop_class).accepted,
                "{backend:?}: refilling the slot freed from class {drop_class} was refused"
            );
        }
    }
}

#[test]
fn admission_is_monotone_in_server_rate() {
    for backend in [CertBackend::Rpps, CertBackend::EffectiveBandwidth] {
        let mut last = 0;
        for rate in [0.5, 1.0, 2.0, 4.0] {
            let mut e = engine(backend, rate);
            let n = fill(&mut e, 1);
            assert!(
                n >= last,
                "{backend:?}: rate {rate} admits {n} < {last} at a lower rate"
            );
            last = n;
        }
        assert!(last > 0, "{backend:?}: largest rate admitted nothing");
    }
}

#[test]
fn admission_is_monotone_in_qos_looseness() {
    // Loosening one class's epsilon (or delay target) can only grow its
    // admissible count: the certificate constraint is one-sided.
    for backend in [CertBackend::Rpps, CertBackend::EffectiveBandwidth] {
        let mut last = 0;
        for (i, eps) in [1e-8, 1e-6, 1e-4, 1e-2].into_iter().enumerate() {
            let mut cls = classes();
            cls[0].target = QosTarget::new(5.0, eps);
            let mut e = AdmissionEngine::new(cls, 1.0, TimeModel::Discrete, backend).unwrap();
            let n = fill(&mut e, 0);
            assert!(
                n >= last,
                "{backend:?}: eps {eps} (step {i}) admits {n} < {last} at a tighter eps"
            );
            last = n;
        }
        let mut cls = classes();
        cls[0].target = QosTarget::new(50.0, 1e-6);
        let mut loose_delay = AdmissionEngine::new(
            cls,
            1.0,
            TimeModel::Discrete,
            CertBackend::EffectiveBandwidth,
        )
        .unwrap();
        let mut tight_delay = engine(CertBackend::EffectiveBandwidth, 1.0);
        assert!(fill(&mut loose_delay, 0) >= fill(&mut tight_delay, 0));
    }
}

#[test]
fn cached_and_uncached_admit_batch_are_byte_identical() {
    // The cache stores exact values of pure functions, and batch
    // prefetch (through the gps_par pool — schedule set by the verify.sh
    // thread matrix) only precomputes them: decision bytes must not
    // depend on either.
    let stream = workload(600, 3, 23);
    for backend in [CertBackend::Rpps, CertBackend::EffectiveBandwidth] {
        let mut cached = engine(backend, 1.0);
        let mut uncached =
            AdmissionEngine::with_cache_cap(classes(), 1.0, TimeModel::Discrete, backend, 0)
                .unwrap();
        let batch: Vec<String> = cached
            .admit_batch(&stream)
            .iter()
            .map(Decision::line)
            .collect();
        let sequential: Vec<String> = stream.iter().map(|r| uncached.decide(*r).line()).collect();
        assert_eq!(
            batch, sequential,
            "{backend:?}: batch/cached vs sequential/uncached"
        );
        assert_eq!(uncached.cache_stats().hits, 0, "cap-0 cache must never hit");
        assert!(
            cached.cache_stats().hits > cached.cache_stats().misses,
            "{backend:?}: replayed batch should be hit-dominated"
        );
    }
}

#[test]
fn cached_warm_started_and_from_scratch_streams_are_bit_identical() {
    // The pinned three-way identity: (a) default engine, (b) warm-start
    // hints disabled, (c) cache disabled AND hints disabled — same
    // request stream, byte-identical decision lines (loads and
    // certificates compared as exact f64 bit patterns).
    let stream = workload(600, 3, 47);
    for backend in [CertBackend::Rpps, CertBackend::EffectiveBandwidth] {
        let mut cached = engine(backend, 1.0);
        let mut no_hints = engine(backend, 1.0);
        no_hints.set_warm_start(false);
        let mut scratch =
            AdmissionEngine::with_cache_cap(classes(), 1.0, TimeModel::Discrete, backend, 0)
                .unwrap();
        scratch.set_warm_start(false);
        for req in &stream {
            let a = cached.decide(*req).line();
            let b = no_hints.decide(*req).line();
            let c = scratch.decide(*req).line();
            assert_eq!(a, b, "{backend:?}: cached vs hint-free diverged");
            assert_eq!(b, c, "{backend:?}: hint-free vs from-scratch diverged");
        }
    }
}

#[test]
fn depart_then_readmit_restores_the_same_certificate() {
    // Departures reopen exactly the freed slot, and the re-admitted
    // session gets a bit-identical certificate (the region depends only
    // on the mix, not the path that reached it).
    let mut e = engine(CertBackend::EffectiveBandwidth, 1.0);
    fill(&mut e, 2);
    let before = e.counts().to_vec();
    assert!(e.depart(2).accepted);
    let d = e.admit(2);
    assert!(d.accepted);
    assert_eq!(e.counts(), &before[..]);
    let again = {
        assert!(e.depart(2).accepted);
        e.admit(2)
    };
    assert_eq!(
        d.certificate
            .map(|c| (c.prefactor.to_bits(), c.decay.to_bits())),
        again
            .certificate
            .map(|c| (c.prefactor.to_bits(), c.decay.to_bits())),
    );
}
